"""The run report CLI: terminal summary + single-file HTML dashboard.

    python -m repro.diagnostics.report results/telemetry/C1-smoke
    python -m repro.diagnostics.report results/telemetry/C1-smoke.jsonl
    python -m repro.diagnostics.report trace.jsonl --html out.html
    python -m repro.diagnostics.report trace.jsonl --no-html

``<run>`` names one run's artifact family: the ``<base>.jsonl`` trace
(required), plus ``<base>.manifest.json`` and ``<base>.audit.json`` when
present (each is warn-only if missing — a trace alone still yields the
convergence story).  The terminal summary shows the CEGIS convergence
table, counterexample lineage, audit margins, and the per-phase time
breakdown; unless ``--no-html`` is given, a self-contained dashboard is
written to ``<base>.report.html`` (no external JS/CSS — safe to attach
to CI artifacts and open offline).

Exit codes: 0 ok, 1 trace exists but every line is malformed,
2 trace unreadable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.diagnostics.audit import load_audit
from repro.diagnostics.convergence import convergence_summary
from repro.diagnostics.html import render_dashboard
from repro.telemetry.report import metrics_summary, phase_totals, worker_lanes


def resolve_run(run: str) -> Dict[str, Optional[str]]:
    """Map a ``<run>`` argument to its artifact paths.

    Accepts the trace path itself or the extension-less base; manifest
    and audit paths are returned only when the files exist.
    """
    base = run[: -len(".jsonl")] if run.endswith(".jsonl") else run
    trace = base + ".jsonl"
    if not os.path.exists(trace) and os.path.exists(run):
        trace, base = run, run  # trace with a non-.jsonl name
    manifest = base + ".manifest.json"
    audit = base + ".audit.json"
    return {
        "base": base,
        "trace": trace,
        "manifest": manifest if os.path.exists(manifest) else None,
        "audit": audit if os.path.exists(audit) else None,
    }


def read_trace(path: str) -> Dict[str, Any]:
    """Tolerant JSONL read; counts (instead of dying on) malformed lines
    so a crashed run's partial final record doesn't hide the rest."""
    events: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return {"events": events, "skipped": skipped}


def _fmt(x: Any) -> str:
    if x is None:
        return "-"
    try:
        v = float(x)
    except (TypeError, ValueError):
        return str(x)
    return f"{v:.4g}" if abs(v) < 1e-3 or abs(v) >= 1e5 else f"{v:.4f}"


def render_terminal(
    summary: Dict[str, Any],
    manifest: Optional[Dict[str, Any]],
    audit: Optional[Dict[str, Any]],
    phases: Dict[str, float],
) -> str:
    lines: List[str] = []
    manifest = manifest or {}
    name = manifest.get("name", "(unnamed run)")
    outcome = manifest.get("outcome") or (
        "success" if summary.get("converged") else "unknown"
    )
    lines.append(f"== Run: {name} ==")
    lines.append(
        f"outcome: {outcome}  iterations: {summary.get('n_iterations', 0)}  "
        f"counterexamples: {summary.get('n_resolved', 0)}/"
        f"{summary.get('n_counterexamples', 0)} resolved"
    )
    stall = summary.get("stall")
    if stall:
        lines.append(
            f"STALL: worst violation non-decreasing for "
            f"{stall.get('window')} iterations (at iter "
            f"{stall.get('iteration')})"
        )
    lines.append("")

    rows = summary.get("iterations", [])
    if rows:
        lines.append("== Convergence ==")
        header = (
            f"{'iter':>4}  {'total':>10}  {'L_I':>10}  {'L_U':>10}  "
            f"{'L_D':>10}  {'worst':>10}  {'cex':>4}  {'dataset':>15}  ok"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in rows:
            sizes = r.get("dataset_sizes") or []
            lines.append(
                f"{r.get('iteration', '?'):>4}  {_fmt(r.get('loss')):>10}  "
                f"{_fmt(r.get('loss_init')):>10}  "
                f"{_fmt(r.get('loss_unsafe')):>10}  "
                f"{_fmt(r.get('loss_domain')):>10}  "
                f"{_fmt(r.get('worst_violation')):>10}  "
                f"{r.get('n_counterexamples', 0):>4}  "
                f"{'/'.join(str(s) for s in sizes):>15}  "
                f"{'yes' if r.get('verified') else 'no'}"
            )
        lines.append("")

    lineage = summary.get("lineage", [])
    if lineage:
        lines.append("== Counterexample lineage ==")
        for r in lineage:
            status = (
                "resolved" if r.get("satisfied_by_final")
                else "STILL VIOLATED"
            )
            lines.append(
                f"  iter {r.get('iteration')}: {r.get('condition')} "
                f"(condition {r.get('paper_condition')}), "
                f"violation {_fmt(r.get('worst_violation'))}, "
                f"{r.get('n_points')} pts -> {status} "
                f"(final {_fmt(r.get('final_violation'))})"
            )
        lines.append("")

    if audit:
        lines.append("== Certificate audit ==")
        for c in audit.get("conditions", []):
            sdp = c.get("sdp", {})
            verdict = (
                "ok" if c.get("feasible") and c.get("validated") else "FAILED"
            )
            convergence = sdp.get("convergence") or "-"
            rung = sdp.get("recovery_rung") or ""
            if rung and rung != "base":
                convergence += f" (via {rung})"
            lines.append(
                f"  {c.get('name')} ({c.get('paper_condition')}): {verdict}  "
                f"min Gram eig {_fmt(c.get('min_gram_eigenvalue'))}  "
                f"residual {_fmt(c.get('residual_bound'))}  "
                f"SDP gap {_fmt(sdp.get('gap'))}  "
                f"ipm {convergence}"
            )
        for name_, m in (audit.get("grid_margins") or {}).items():
            margin = m.get("margin")
            holds = margin is not None and float(margin) > 0
            lines.append(
                f"  grid {name_}: margin {_fmt(margin)} over "
                f"{m.get('n_points')} pts "
                f"{'(holds)' if holds else '(VIOLATED)'}"
            )
        soundness = audit.get("soundness")
        if soundness:
            verdict = "PROVEN over Q" if soundness.get("ok") else "REJECTED"
            lines.append(f"  exact recheck: {verdict}")
            for c in soundness.get("conditions", []):
                lines.append(
                    f"    {c.get('name')}: "
                    f"{'ok' if c.get('ok') else 'FAILED'}  "
                    f"certified margin {_fmt(c.get('certified_margin'))}  "
                    f"shift {_fmt(c.get('slack_shift'))}"
                    + (f"  ({c.get('message')})" if c.get("message") else "")
                )
        lines.append("")

    if phases:
        grand = sum(phases.values()) or 1.0
        lines.append("== Phases ==")
        for p, v in sorted(phases.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {p:<16} {v:>8.3f}s  {100.0 * v / grand:>5.1f}%")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diagnostics.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "run", help="run base path or its .jsonl trace "
                    "(manifest/audit auto-detected alongside)"
    )
    parser.add_argument("--html", default=None,
                        help="dashboard output path "
                             "(default <base>.report.html)")
    parser.add_argument("--no-html", action="store_true",
                        help="terminal summary only")
    args = parser.parse_args(argv)

    paths = resolve_run(args.run)
    try:
        trace = read_trace(paths["trace"])
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    events, skipped = trace["events"], trace["skipped"]
    if skipped and not events:
        print(
            f"error: all {skipped} line(s) of the trace are malformed",
            file=sys.stderr,
        )
        return 1
    if skipped:
        print(f"warning: skipped {skipped} malformed line(s)", file=sys.stderr)

    manifest: Optional[Dict[str, Any]] = None
    if paths["manifest"]:
        try:
            with open(paths["manifest"], "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: unreadable manifest: {exc}", file=sys.stderr)
    else:
        print(
            f"warning: no manifest at {paths['base']}.manifest.json",
            file=sys.stderr,
        )

    audit: Optional[Dict[str, Any]] = None
    if paths["audit"]:
        try:
            audit = load_audit(paths["audit"])
        except (OSError, ValueError) as exc:
            print(f"warning: unreadable audit: {exc}", file=sys.stderr)
    else:
        print(
            f"warning: no audit artifact at {paths['base']}.audit.json",
            file=sys.stderr,
        )

    summary = convergence_summary(events)
    phases = phase_totals(events)
    metrics = metrics_summary(events)
    workers = worker_lanes(events)

    print(render_terminal(summary, manifest, audit, phases), end="")

    if not args.no_html:
        out = args.html or (paths["base"] + ".report.html")
        title = (manifest or {}).get("name") or os.path.basename(paths["base"])
        page = render_dashboard(title, manifest, summary, audit, phases,
                                metrics, workers=workers)
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(page)
        print(f"dashboard written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
