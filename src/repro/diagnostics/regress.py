"""Benchmark regression gate.

    python -m repro.diagnostics.regress OLD.json NEW.json --max-slowdown 1.3
    python -m repro.diagnostics.regress base.json new.json --systems C1,C3
    python -m repro.diagnostics.regress base.json new.json --ignore-timings
    python -m repro.diagnostics.regress BENCH_perf_baseline.json BENCH_perf.json

The document kind is auto-detected.  For ``BENCH_table1.json`` documents
(see :mod:`repro.diagnostics.bench`) the gate compares system by system
and **exits nonzero** when the new run regressed:

* **outcome** — a system that succeeded in OLD but not in NEW, or one
  that ran to completion in OLD (``success``/``failure``) and now ends
  with ``timeout``/``error`` — a new failure class gates hard;
* **iterations** — more CEGIS iterations than OLD allows
  (``--max-extra-iterations``, default 0: the loop is seeded and
  deterministic, so extra rounds are a real behavior change);
* **time** — any of ``T_l``/``T_c``/``T_v``/``T_e`` beyond
  ``--max-slowdown`` times the OLD value, ignoring timings below
  ``--min-seconds`` (tiny phases are all noise);
* **coverage** — a system present in OLD but missing from NEW
  (disable with ``--allow-missing``).

Audit-margin changes (e.g. a grid margin flipping sign) are reported as
warnings but do not gate: margins move with every retrain and the hard
outcome check already covers soundness.

For ``BENCH_perf.json`` documents (see
:mod:`repro.diagnostics.perfbench`) the gate is **loose on timings**
(``--max-slowdown``, wall-clocks are machine-dependent) but **hard on
correctness**: every bench's ``identical`` flag must hold in NEW, and
the e2e row's CEGIS outcome/iteration count must match OLD.

For ``BENCH_service.json`` documents (see
:mod:`repro.diagnostics.servicebench`) the gate is hard on the chaos
invariants (every job terminal, zero corrupt cache entries served,
serial identity preserved), per-key outcome, and cache hit rate;
retry/redelivery counts only warn.

For ``BENCH_scenarios.json`` documents (see
:mod:`repro.diagnostics.scenariobench`) the gate is hard on the sweep
invariants (every outcome terminal, zero rational-recheck failures,
minted expectations met), per-seed outcome, cell decomposition, and
region-spec hash; verify timings only report.

Exit codes: 0 no regression, 1 regression(s), 2 unreadable/invalid input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.diagnostics.bench import BENCH_KIND, TIMING_KEYS, load_bench
from repro.diagnostics.perfbench import PERF_KIND, load_perf
from repro.diagnostics.scenariobench import (
    SCENARIO_KIND,
    compare_scenario_benches,
    load_scenario_bench,
    render_scenario_table,
)
from repro.diagnostics.servicebench import (
    SERVICE_KIND,
    compare_service_benches,
    load_service_bench,
    render_service_table,
)


def compare_benches(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_slowdown: float = 1.3,
    min_seconds: float = 0.05,
    max_extra_iterations: int = 0,
    systems: Optional[Sequence[str]] = None,
    allow_missing: bool = False,
    ignore_timings: bool = False,
) -> Dict[str, List[str]]:
    """Pure comparison; returns ``{"regressions": [...], "warnings": [...]}``."""
    regressions: List[str] = []
    warnings: List[str] = []
    old_systems = old["systems"]
    new_systems = new["systems"]
    names = list(old_systems) if systems is None else [
        s for s in systems if s in old_systems
    ]
    if systems is not None:
        for s in systems:
            if s not in old_systems:
                warnings.append(f"{s}: not in OLD baseline; skipped")
    if old.get("scale") != new.get("scale"):
        warnings.append(
            f"scale mismatch: OLD={old.get('scale')!r} NEW={new.get('scale')!r}"
            " — timing comparison is apples-to-oranges"
        )

    for name in names:
        o = old_systems[name]
        n = new_systems.get(name)
        if n is None:
            (warnings if allow_missing else regressions).append(
                f"{name}: present in OLD but missing from NEW"
            )
            continue
        if o["outcome"] == "success" and n["outcome"] != "success":
            regressions.append(
                f"{name}: outcome regressed ({o['outcome']} -> {n['outcome']})"
            )
            continue  # timings of a failed run are not comparable
        if n["outcome"] in ("timeout", "error") and o["outcome"] not in (
            "timeout",
            "error",
        ):
            # a system that used to run to completion (even unsuccessfully)
            # now dies on a deadline or a typed failure: a new failure
            # class is a hard regression, not a tolerable flake
            regressions.append(
                f"{name}: new failure class "
                f"({o['outcome']} -> {n['outcome']}"
                + (
                    f", {n['error'].get('kind')}" if n.get("error") else ""
                )
                + ")"
            )
            continue
        if o["outcome"] == "success":
            extra = int(n["iterations"]) - int(o["iterations"])
            if extra > max_extra_iterations:
                regressions.append(
                    f"{name}: iterations {o['iterations']} -> "
                    f"{n['iterations']} (+{extra} > "
                    f"allowed +{max_extra_iterations})"
                )
        if not ignore_timings:
            for key in TIMING_KEYS:
                t_old = float(o["timings"].get(key, 0.0))
                t_new = float(n["timings"].get(key, 0.0))
                if t_old < min_seconds:
                    continue
                if t_new > t_old * max_slowdown:
                    regressions.append(
                        f"{name}: {key} {t_old:.3f}s -> {t_new:.3f}s "
                        f"({t_new / t_old:.2f}x > {max_slowdown:.2f}x)"
                    )
        o_audit, n_audit = o.get("audit"), n.get("audit")
        if o_audit and n_audit:
            o_m = o_audit.get("min_grid_margin")
            n_m = n_audit.get("min_grid_margin")
            if o_m is not None and n_m is not None and o_m > 0 >= n_m:
                warnings.append(
                    f"{name}: min grid margin flipped sign "
                    f"({o_m:.3e} -> {n_m:.3e})"
                )
    return {"regressions": regressions, "warnings": warnings}


def compare_perf_benches(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_slowdown: float = 3.0,
    min_seconds: float = 0.05,
    allow_missing: bool = False,
    ignore_timings: bool = False,
) -> Dict[str, List[str]]:
    """Gate two BENCH_perf documents.

    Timing checks are loose (default 3x: microbench wall-clocks swing
    with the machine); the ``identical`` flags and the e2e correctness
    row are hard regardless of ``ignore_timings``.
    """
    regressions: List[str] = []
    warnings: List[str] = []
    for name, o in old["benches"].items():
        n = new["benches"].get(name)
        if n is None:
            (warnings if allow_missing else regressions).append(
                f"{name}: present in OLD but missing from NEW"
            )
            continue
        if not n.get("identical", False):
            regressions.append(
                f"{name}: optimized path diverged from the reference path"
            )
        o_corr, n_corr = o.get("correctness"), n.get("correctness")
        if o_corr and n_corr:
            if n_corr.get("outcome") != o_corr.get("outcome"):
                regressions.append(
                    f"{name}: outcome regressed "
                    f"({o_corr.get('outcome')} -> {n_corr.get('outcome')})"
                )
            elif n_corr.get("iterations") != o_corr.get("iterations"):
                regressions.append(
                    f"{name}: iterations {o_corr.get('iterations')} -> "
                    f"{n_corr.get('iterations')}"
                )
        if not ignore_timings:
            t_old = float(o.get("seconds", 0.0))
            t_new = float(n.get("seconds", 0.0))
            if t_old >= min_seconds and t_new > t_old * max_slowdown:
                regressions.append(
                    f"{name}: {t_old:.3f}s -> {t_new:.3f}s "
                    f"({t_new / t_old:.2f}x > {max_slowdown:.2f}x)"
                )
    return {"regressions": regressions, "warnings": warnings}


def _render_perf_table(old: Dict[str, Any], new: Dict[str, Any]) -> str:
    header = (
        f"{'bench':<18}{'old s':>10}{'new s':>10}{'ratio':>8}"
        f"{'speedup':>9}{'identical':>11}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(set(old["benches"]) | set(new["benches"])):
        o = old["benches"].get(name)
        n = new["benches"].get(name)
        t_old = float(o["seconds"]) if o else float("nan")
        t_new = float(n["seconds"]) if n else float("nan")
        ratio = t_new / t_old if o and n and t_old > 0 else float("nan")
        speedup = n.get("speedup") if n else None
        lines.append(
            f"{name:<18}{t_old:>10.3f}{t_new:>10.3f}{ratio:>8.2f}"
            f"{(speedup if speedup is not None else float('nan')):>9.2f}"
            f"{str(bool(n.get('identical'))) if n else '-':>11}"
        )
    return "\n".join(lines)


def _detect_kind(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return str(json.load(fh).get("kind", ""))


def _render_table(old: Dict[str, Any], new: Dict[str, Any]) -> str:
    header = f"{'system':<8}{'outcome':<20}{'iters':<12}{'T_e old':>10}{'T_e new':>10}{'ratio':>8}"
    lines = [header, "-" * len(header)]
    for name in sorted(set(old["systems"]) | set(new["systems"])):
        o = old["systems"].get(name)
        n = new["systems"].get(name)

        def fmt(entry, key, sub=None):
            if entry is None:
                return "-"
            value = entry.get(key) if sub is None else entry[key].get(sub)
            return str(value)

        t_old = float(o["timings"]["T_e"]) if o else float("nan")
        t_new = float(n["timings"]["T_e"]) if n else float("nan")
        ratio = t_new / t_old if o and n and t_old > 0 else float("nan")
        lines.append(
            f"{name:<8}"
            f"{fmt(o, 'outcome') + '->' + fmt(n, 'outcome'):<20}"
            f"{fmt(o, 'iterations') + '->' + fmt(n, 'iterations'):<12}"
            f"{t_old:>10.3f}{t_new:>10.3f}{ratio:>8.2f}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diagnostics.regress", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("old", help="baseline BENCH_table1.json")
    parser.add_argument("new", help="candidate BENCH_table1.json")
    parser.add_argument("--max-slowdown", type=float, default=1.3,
                        help="allowed per-timing ratio NEW/OLD (default 1.3)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore OLD timings below this (default 0.05)")
    parser.add_argument("--max-extra-iterations", type=int, default=0,
                        help="allowed CEGIS iteration increase (default 0)")
    parser.add_argument("--systems", default=None,
                        help="comma-separated subset to compare")
    parser.add_argument("--allow-missing", action="store_true",
                        help="missing systems in NEW warn instead of fail")
    parser.add_argument("--ignore-timings", action="store_true",
                        help="gate only on outcome/iterations/coverage")
    args = parser.parse_args(argv)

    try:
        kind_old = _detect_kind(args.old)
        kind_new = _detect_kind(args.new)
        if kind_old != kind_new:
            raise ValueError(
                f"kind mismatch: {args.old} is {kind_old!r}, "
                f"{args.new} is {kind_new!r}"
            )
        if kind_old == PERF_KIND:
            old = load_perf(args.old)
            new = load_perf(args.new)
        elif kind_old == SERVICE_KIND:
            old = load_service_bench(args.old)
            new = load_service_bench(args.new)
        elif kind_old == SCENARIO_KIND:
            old = load_scenario_bench(args.old)
            new = load_scenario_bench(args.new)
        elif kind_old == BENCH_KIND:
            old = load_bench(args.old)
            new = load_bench(args.new)
        else:
            raise ValueError(f"{args.old}: unknown document kind {kind_old!r}")
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if kind_old == SCENARIO_KIND:
        outcome = compare_scenario_benches(
            old, new, allow_missing=args.allow_missing
        )
        print(render_scenario_table(old, new))
        for w in outcome["warnings"]:
            print(f"warning: {w}")
        if outcome["regressions"]:
            print(f"\n{len(outcome['regressions'])} regression(s):")
            for r in outcome["regressions"]:
                print(f"  FAIL {r}")
            return 1
        print("\nno regressions")
        return 0

    if kind_old == SERVICE_KIND:
        outcome = compare_service_benches(
            old, new, allow_missing=args.allow_missing
        )
        print(render_service_table(old, new))
        for w in outcome["warnings"]:
            print(f"warning: {w}")
        if outcome["regressions"]:
            print(f"\n{len(outcome['regressions'])} regression(s):")
            for r in outcome["regressions"]:
                print(f"  FAIL {r}")
            return 1
        print("\nno regressions")
        return 0

    if kind_old == PERF_KIND:
        outcome = compare_perf_benches(
            old,
            new,
            max_slowdown=args.max_slowdown,
            min_seconds=args.min_seconds,
            allow_missing=args.allow_missing,
            ignore_timings=args.ignore_timings,
        )
        print(_render_perf_table(old, new))
        for w in outcome["warnings"]:
            print(f"warning: {w}")
        if outcome["regressions"]:
            print(f"\n{len(outcome['regressions'])} regression(s):")
            for r in outcome["regressions"]:
                print(f"  FAIL {r}")
            return 1
        print("\nno regressions")
        return 0

    systems = (
        [s.strip() for s in args.systems.split(",") if s.strip()]
        if args.systems
        else None
    )
    outcome = compare_benches(
        old,
        new,
        max_slowdown=args.max_slowdown,
        min_seconds=args.min_seconds,
        max_extra_iterations=args.max_extra_iterations,
        systems=systems,
        allow_missing=args.allow_missing,
        ignore_timings=args.ignore_timings,
    )

    print(_render_table(old, new))
    for w in outcome["warnings"]:
        print(f"warning: {w}")
    if outcome["regressions"]:
        print(f"\n{len(outcome['regressions'])} regression(s):")
        for r in outcome["regressions"]:
            print(f"  FAIL {r}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
