"""CEGIS flight recorder: convergence diagnostics, certificate audits,
and the benchmark regression gate.

Layers on top of :mod:`repro.telemetry` (which records *what happened*)
to answer *how well it went*:

* :mod:`repro.diagnostics.convergence` — stall detection and trace-event
  digestion (per-iteration loss breakdown, counterexample lineage);
* :mod:`repro.diagnostics.audit` — independent numerical recheck of a
  synthesized certificate (Gram/IPM margins + dense-grid margins);
* :mod:`repro.diagnostics.bench` / :mod:`repro.diagnostics.regress` —
  the ``BENCH_table1.json`` schema and the CLI gate that compares two of
  them (``python -m repro.diagnostics.regress OLD NEW``);
* :mod:`repro.diagnostics.report` — per-run terminal summary + single
  file HTML dashboard (``python -m repro.diagnostics.report <run>``).

Import discipline: this package is imported *by* :mod:`repro.cegis`
(the stall detector runs inside the loop), so nothing here may import
``repro.cegis`` at module level — run results are duck-typed instead.
"""

from repro.diagnostics.audit import (
    AUDIT_SCHEMA_VERSION,
    audit_certificate,
    grid_margins,
    load_audit,
    write_audit,
)
from repro.diagnostics.bench import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    TIMING_KEYS,
    bench_document,
    bench_entry,
    error_entry,
    load_bench,
    result_outcome,
    write_bench,
)
from repro.diagnostics.convergence import (
    DEFAULT_STALL_WINDOW,
    convergence_summary,
    detect_stall,
    iteration_rows,
    lineage_records,
    stall_event,
)

# NOTE: the CLI modules (repro.diagnostics.regress / .report) are not
# imported here so `python -m` runs them exactly once.

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "BENCH_KIND",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_STALL_WINDOW",
    "TIMING_KEYS",
    "audit_certificate",
    "bench_document",
    "bench_entry",
    "convergence_summary",
    "detect_stall",
    "error_entry",
    "grid_margins",
    "iteration_rows",
    "lineage_records",
    "load_audit",
    "load_bench",
    "result_outcome",
    "stall_event",
    "write_audit",
    "write_bench",
]
