"""Self-contained single-file HTML dashboard for one SNBC run.

Pure string building over the data the report CLI already collected — no
external JS/CSS, no third-party assets: styles are inline CSS custom
properties (light + dark), charts are inline SVG with native ``<title>``
hover tooltips, and every chart is paired with a data table so nothing is
readable only through color.

Color assignment is fixed, not cycled: the three condition families keep
one hue each everywhere in the dashboard (init=blue, unsafe=orange,
lie/domain=aqua), phase bars are a single hue because their message is
magnitude, and pass/fail verdicts are text plus symbol, never color
alone.
"""

from __future__ import annotations

import html as _html
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: fixed categorical slots per condition family (light, dark)
CONDITION_COLORS = {
    "init": ("#2a78d6", "#3987e5"),
    "unsafe": ("#eb6834", "#d95926"),
    "domain": ("#1baf7a", "#199e70"),
    "lie": ("#1baf7a", "#199e70"),
}
CONDITION_ORDER = ["init", "unsafe", "domain"]

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e3e2de;
  --series-init: #2a78d6;
  --series-unsafe: #eb6834;
  --series-domain: #1baf7a;
  --bar: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #383835;
    --series-init: #3987e5;
    --series-unsafe: #d95926;
    --series-domain: #199e70;
    --bar: #3987e5;
  }
}
body {
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0 auto;
  max-width: 960px;
  padding: 24px 16px 64px;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-2);
  border-radius: 8px;
  padding: 10px 14px;
  min-width: 120px;
}
.tile .v { font-size: 20px; font-weight: 600; display: block; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; width: 100%; margin: 8px 0 16px; }
th, td {
  text-align: right;
  padding: 4px 8px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th:first-child, td:first-child { text-align: left; }
th { color: var(--text-secondary); font-weight: 500; }
svg { display: block; margin: 8px 0; }
.legend { color: var(--text-secondary); font-size: 12px; margin: 4px 0; }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 12px; vertical-align: baseline;
}
.ok::before { content: "\\2713 "; }
.fail::before { content: "\\2717 "; font-weight: 700; }
"""


def esc(value: Any) -> str:
    return _html.escape(str(value))


def fmt(x: Any, digits: int = 4) -> str:
    """Compact numeric formatting for tables ('-' for missing)."""
    if x is None:
        return "-"
    try:
        v = float(x)
    except (TypeError, ValueError):
        return esc(x)
    if not math.isfinite(v):
        return esc(x)
    if v == 0.0:
        return "0"
    if abs(v) < 1e-3 or abs(v) >= 1e5:
        return f"{v:.{digits - 1}e}"
    return f"{v:.{digits}g}"


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    head = "".join(f"<th>{esc(h)}</th>" for h in header)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    spans = "".join(
        f'<span class="swatch" style="background:var(--series-{slot})"></span>'
        f"{esc(label)}"
        for label, slot in entries
    )
    return f'<div class="legend">{spans}</div>'


def _scale(
    values: Sequence[float], lo_px: float, hi_px: float
) -> Tuple[float, float, Any]:
    """Linear scale over the (finite) data range; pads a flat range."""
    finite = [v for v in values if math.isfinite(v)]
    v_lo, v_hi = (min(finite), max(finite)) if finite else (0.0, 1.0)
    if v_hi - v_lo < 1e-12:
        v_lo, v_hi = v_lo - 0.5, v_hi + 0.5

    def to_px(v: float) -> float:
        return lo_px + (v - v_lo) / (v_hi - v_lo) * (hi_px - lo_px)

    return v_lo, v_hi, to_px


def loss_chart(rows: Sequence[Dict[str, Any]]) -> str:
    """Per-condition loss trajectory as an SVG line chart + table.

    Series keep the fixed condition hues; direct hover via per-point
    ``<title>`` tooltips; the table below is the accessible twin.
    """
    if not rows:
        return "<p class='sub'>no iteration events in this trace</p>"
    series = {
        "init": [r.get("loss_init") for r in rows],
        "unsafe": [r.get("loss_unsafe") for r in rows],
        "domain": [r.get("loss_domain") for r in rows],
    }
    width, height, pad = 640, 220, 36
    all_vals = [
        float(v)
        for vs in series.values()
        for v in vs
        if v is not None and math.isfinite(float(v))
    ]
    v_lo, v_hi, y_px = _scale(all_vals, height - pad, pad)
    n = len(rows)
    def x_px(i: float) -> float:
        return pad + (i / max(n - 1, 1)) * (width - 2 * pad)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}"'
        f' role="img" aria-label="per-condition loss by iteration">'
    ]
    # recessive grid: 3 horizontal lines + the baseline
    for frac in (0.0, 0.5, 1.0):
        v = v_lo + frac * (v_hi - v_lo)
        y = y_px(v)
        parts.append(
            f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" y2="{y:.1f}"'
            f' stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{pad - 4}" y="{y + 4:.1f}" text-anchor="end"'
            f' font-size="11" fill="var(--text-secondary)">{fmt(v, 3)}</text>'
        )
    for cond in CONDITION_ORDER:
        vals = series[cond]
        pts = [
            (x_px(i), y_px(float(v)))
            for i, v in enumerate(vals)
            if v is not None and math.isfinite(float(v))
        ]
        if not pts:
            continue
        poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{poly}" fill="none"'
            f' stroke="var(--series-{cond})" stroke-width="2"/>'
        )
        for i, v in enumerate(vals):
            if v is None or not math.isfinite(float(v)):
                continue
            parts.append(
                f'<circle cx="{x_px(i):.1f}" cy="{y_px(float(v)):.1f}" r="4"'
                f' fill="var(--series-{cond})" stroke="var(--surface-1)"'
                f' stroke-width="2">'
                f"<title>{esc(cond)} loss, iteration "
                f"{rows[i].get('iteration', i + 1)}: {fmt(v)}</title></circle>"
            )
    for i, r in enumerate(rows):
        parts.append(
            f'<text x="{x_px(i):.1f}" y="{height - pad + 16}"'
            f' text-anchor="middle" font-size="11"'
            f' fill="var(--text-secondary)">{esc(r.get("iteration", i + 1))}</text>'
        )
    parts.append("</svg>")
    legend = _legend([("L_I (init)", "init"), ("L_U (unsafe)", "unsafe"),
                      ("L_D (domain)", "domain")])
    table = _table(
        ["iter", "total", "L_I", "L_U", "L_D", "worst viol.", "cex", "|S_I|",
         "|S_U|", "|S_D|", "verified"],
        [
            [
                esc(r.get("iteration")),
                fmt(r.get("loss")),
                fmt(r.get("loss_init")),
                fmt(r.get("loss_unsafe")),
                fmt(r.get("loss_domain")),
                fmt(r.get("worst_violation")),
                esc(r.get("n_counterexamples", 0)),
                *(esc(s) for s in (r.get("dataset_sizes") or ["-"] * 3)),
                '<span class="ok">yes</span>' if r.get("verified")
                else '<span class="fail">no</span>',
            ]
            for r in rows
        ],
    )
    return "".join(parts) + legend + table


def lineage_chart(records: Sequence[Dict[str, Any]]) -> str:
    """Counterexample lineage: violation magnitude by iteration of origin,
    one fixed hue per condition; resolved points are filled, points the
    final certificate still violates are hollow (shape, not color, carries
    the verdict)."""
    if not records:
        return ("<p class='sub'>no counterexamples were generated "
                "(first candidate verified, or no true violations found)</p>")
    width, height, pad = 640, 220, 36
    iters = [int(r.get("iteration", 0)) for r in records]
    lo_it, hi_it = min(iters), max(iters)
    vals = [float(r.get("worst_violation", 0.0)) for r in records]
    _, _, y_px = _scale(vals, height - pad, pad)

    def x_px(it: float) -> float:
        return pad + (it - lo_it) / max(hi_it - lo_it, 1) * (width - 2 * pad)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}"'
        f' role="img" aria-label="counterexample lineage">'
    ]
    v_fin = [v for v in vals if math.isfinite(v)]
    for frac in (0.0, 0.5, 1.0):
        v = (min(v_fin) + frac * (max(v_fin) - min(v_fin))) if v_fin else frac
        y = y_px(v)
        parts.append(
            f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" y2="{y:.1f}"'
            f' stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{pad - 4}" y="{y + 4:.1f}" text-anchor="end"'
            f' font-size="11" fill="var(--text-secondary)">{fmt(v, 3)}</text>'
        )
    for it in range(lo_it, hi_it + 1):
        parts.append(
            f'<text x="{x_px(it):.1f}" y="{height - pad + 16}"'
            f' text-anchor="middle" font-size="11"'
            f' fill="var(--text-secondary)">{it}</text>'
        )
    for r in records:
        cond = str(r.get("condition", "domain"))
        slot = cond if cond in CONDITION_COLORS else "domain"
        slot = "domain" if slot == "lie" else slot
        resolved = bool(r.get("satisfied_by_final"))
        x = x_px(int(r.get("iteration", 0)))
        y = y_px(float(r.get("worst_violation", 0.0)))
        fill = f"var(--series-{slot})" if resolved else "var(--surface-1)"
        title = (
            f"iter {r.get('iteration')}: {esc(cond)} "
            f"(condition {r.get('paper_condition')}), "
            f"violation {fmt(r.get('worst_violation'))}, "
            f"gamma {fmt(r.get('gamma'))}, {r.get('n_points')} pts — "
            + ("resolved by final B" if resolved else "still violated")
        )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5" fill="{fill}"'
            f' stroke="var(--series-{slot})" stroke-width="2">'
            f"<title>{title}</title></circle>"
        )
    parts.append("</svg>")
    legend = _legend(
        [("init (13)", "init"), ("unsafe (14)", "unsafe"), ("lie (15)", "domain")]
    ) + ("<div class='legend'>filled = satisfied by final certificate, "
         "hollow = still violated</div>")
    table = _table(
        ["origin iter", "condition", "paper", "violation", "gamma", "points",
         "final violation", "resolved"],
        [
            [
                esc(r.get("iteration")),
                esc(r.get("condition")),
                f"({esc(r.get('paper_condition'))})",
                fmt(r.get("worst_violation")),
                fmt(r.get("gamma")),
                esc(r.get("n_points")),
                fmt(r.get("final_violation")),
                '<span class="ok">yes</span>' if r.get("satisfied_by_final")
                else '<span class="fail">no</span>',
            ]
            for r in records
        ],
    )
    return "".join(parts) + legend + table


def phase_chart(phases: Dict[str, float]) -> str:
    """Phase time breakdown: single-hue horizontal bars (the message is
    magnitude; labels carry identity) + table."""
    if not phases:
        return "<p class='sub'>no phase spans in this trace</p>"
    order = ["inclusion", "learning", "verification", "counterexample"]
    items = [(p, phases[p]) for p in order if p in phases]
    items += sorted(
        (kv for kv in phases.items() if kv[0] not in order),
        key=lambda kv: -kv[1],
    )
    total = sum(v for _, v in items) or 1.0
    width, row_h, label_w = 640, 26, 130
    height = row_h * len(items) + 8
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}"'
        f' role="img" aria-label="seconds per phase">'
    ]
    vmax = max(v for _, v in items) or 1.0
    for i, (name, v) in enumerate(items):
        y = i * row_h + 4
        w = (v / vmax) * (width - label_w - 90)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 15}" text-anchor="end"'
            f' font-size="12" fill="var(--text-primary)">{esc(name)}</text>'
            f'<rect x="{label_w}" y="{y}" width="{max(w, 2):.1f}" height="18"'
            f' rx="4" fill="var(--bar)">'
            f"<title>{esc(name)}: {v:.3f}s "
            f"({100.0 * v / total:.1f}%)</title></rect>"
            f'<text x="{label_w + max(w, 2) + 6:.1f}" y="{y + 15}"'
            f' font-size="12" fill="var(--text-secondary)">'
            f"{v:.3f}s · {100.0 * v / total:.1f}%</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def audit_section(audit: Optional[Dict[str, Any]]) -> str:
    """Certificate audit tables: per-condition SOS/IPM numbers and the
    dense-grid margins."""
    if not audit:
        return ("<p class='sub'>no audit artifact found next to this trace "
                "(runs emit one after verification)</p>")
    rows = []
    for c in audit.get("conditions", []):
        sdp = c.get("sdp", {})
        verdict = (
            '<span class="ok">ok</span>'
            if c.get("feasible") and c.get("validated")
            else '<span class="fail">failed</span>'
        )
        convergence = sdp.get("convergence") or "-"
        conv_cell = (
            f'<span class="ok">{esc(convergence)}</span>'
            if convergence == "healthy"
            else (
                f'<span class="fail">{esc(convergence)}</span>'
                if convergence in ("diverging", "ill_conditioned", "stalling")
                else esc(convergence)
            )
        )
        rung = sdp.get("recovery_rung") or ""
        if rung and rung != "base":
            conv_cell += f" <span class='sub'>via {esc(rung)}</span>"
        rows.append(
            [
                esc(c.get("name")),
                f"({esc(c.get('paper_condition'))})",
                verdict,
                fmt(c.get("min_gram_eigenvalue")),
                fmt(c.get("residual_bound")),
                fmt(sdp.get("gap")),
                fmt(sdp.get("primal_residual")),
                fmt(sdp.get("dual_residual")),
                esc(sdp.get("iterations")),
                conv_cell,
            ]
        )
    cond_table = _table(
        ["condition", "paper", "verdict", "min Gram eig", "residual bound",
         "SDP gap", "primal res", "dual res", "IPM iters", "convergence"],
        rows,
    ) if rows else "<p class='sub'>no verified conditions recorded</p>"

    margin_rows = []
    for name, m in (audit.get("grid_margins") or {}).items():
        margin = m.get("margin")
        verdict = (
            '<span class="ok">holds</span>'
            if margin is not None and float(margin) > 0
            else '<span class="fail">violated</span>'
        )
        margin_rows.append(
            [esc(name), fmt(margin), esc(m.get("n_points")),
             esc(m.get("n_endpoints", 1)), verdict]
        )
    margin_table = _table(
        ["condition", "grid margin", "points", "endpoints", "verdict"],
        margin_rows,
    ) if margin_rows else ""
    return cond_table + "<h2>Dense-grid margins</h2>" + margin_table


def metrics_section(metrics: Dict[str, Any]) -> str:
    hists = (metrics or {}).get("histograms", {})
    if not hists:
        return ""
    rows = [
        [esc(k), esc(int(s.get("count", 0))), fmt(s.get("mean")),
         fmt(s.get("p50")), fmt(s.get("p95")), fmt(s.get("p99")),
         fmt(s.get("max"))]
        for k, s in sorted(hists.items())
    ]
    return "<h2>Metric histograms</h2>" + _table(
        ["metric", "count", "mean", "p50", "p95", "p99", "max"], rows
    )


def workers_section(workers: Optional[Sequence[Dict[str, Any]]]) -> str:
    """Worker-lane table for cross-process (merged) traces."""
    if not workers:
        return ""
    rows = [
        [esc(w.get("shard", "?")), esc(w.get("pid", "-")),
         esc(int(w.get("spans", 0))), fmt(w.get("seconds")),
         fmt(w.get("clock_skew_s"), digits=6)]
        for w in workers
    ]
    return "<h2>Worker lanes</h2>" + _table(
        ["shard", "pid", "spans", "busy s", "clock skew s"], rows
    )


def render_dashboard(
    title: str,
    manifest: Optional[Dict[str, Any]],
    summary: Dict[str, Any],
    audit: Optional[Dict[str, Any]],
    phases: Dict[str, float],
    metrics: Dict[str, Any],
    workers: Optional[Sequence[Dict[str, Any]]] = None,
) -> str:
    """The full single-file dashboard as an HTML string."""
    manifest = manifest or {}
    outcome = manifest.get("outcome") or (
        "success" if summary.get("converged") else "unknown"
    )
    sub_bits = [
        f"outcome: {esc(outcome)}",
        f"seed: {esc(manifest.get('seed', '-'))}",
        f"git: {esc((manifest.get('git_sha') or '-')[:12])}",
        f"elapsed: {fmt(manifest.get('elapsed_seconds'))}s",
    ]
    stall = summary.get("stall")
    audit_summary = (audit or {}).get("summary", {})
    tiles = [
        ("CEGIS iterations", summary.get("n_iterations", 0)),
        (
            "counterexamples resolved",
            f"{summary.get('n_resolved', 0)}/{summary.get('n_counterexamples', 0)}",
        ),
        (
            "stall",
            f"at iter {stall.get('iteration')}" if stall else "none",
        ),
        ("min Gram eig", fmt(audit_summary.get("min_gram_eigenvalue"))),
        ("min grid margin", fmt(audit_summary.get("min_grid_margin"))),
        ("max SDP gap", fmt(audit_summary.get("max_sdp_gap"))),
    ]
    tile_html = "".join(
        f'<div class="tile"><span class="v">{esc(v)}</span>'
        f'<span class="k">{esc(k)}</span></div>'
        for k, v in tiles
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{esc(title)} — SNBC run report</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{esc(title)}</h1>
<p class="sub">{" · ".join(sub_bits)}</p>
<div class="tiles">{tile_html}</div>
<h2>Convergence — per-condition loss by CEGIS iteration</h2>
{loss_chart(summary.get("iterations", []))}
<h2>Counterexample lineage</h2>
{lineage_chart(summary.get("lineage", []))}
<h2>Certificate audit</h2>
{audit_section(audit)}
<h2>Phase times</h2>
{phase_chart(phases)}
{workers_section(workers)}
{metrics_section(metrics)}
</body>
</html>
"""
