"""Certificate audit: independent numerical recheck of a synthesized BC.

A successful SNBC run ends with an SOS feasibility certificate for each
of conditions (13)-(15).  The audit answers "how much numerical headroom
does that certificate have":

* the **Gram margins** carried by the verifier's condition reports — the
  minimum Gram-matrix eigenvalue and the SOS decomposition residual
  bound of each sub-problem (how close the certificate sits to the PSD
  boundary);
* the **IPM endgame** — the interior-point solver's final duality gap and
  primal/dual residuals per sub-problem;
* a fresh **dense-grid margin** — the minimum of ``B`` over Θ, of ``-B``
  over Ξ, and of the Lie margin ``L_f B - λB`` over Ψ at every inclusion
  error endpoint, evaluated on a deterministic grid+sample point cloud.
  This recheck is independent of the SOS machinery: it evaluates the
  *polynomials* the run produced, so a bookkeeping bug anywhere in the
  SOS pipeline would surface here as a negative margin.

The artifact is a flat JSON document written next to the run's trace
(``<trace>.audit.json``) and consumed by the report CLI and the bench
regression gate.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.poly import Polynomial, lie_derivative, linf_norm

AUDIT_SCHEMA_VERSION = 1

#: paper numbering of the condition families (matches the verifier)
PAPER_CONDITION_NUMBERS = {"init": 13, "unsafe": 14, "lie": 15}


def _base_condition(name: str) -> str:
    return "lie" if name.startswith("lie") else name


def region_points(
    region: Any, max_points: int, rng: np.random.Generator
) -> np.ndarray:
    """Deterministic evaluation cloud for one region: a regular grid over
    the bounding box filtered to the set, densified with set samples up to
    ``max_points`` (grids alone are useless past ~6 dimensions)."""
    pts_list: List[np.ndarray] = []
    bbox = getattr(region, "bounding_box", None)
    if bbox is not None:
        lo, hi = np.asarray(bbox[0], dtype=float), np.asarray(bbox[1], dtype=float)
        n = len(lo)
        per_dim = max(2, int(math.floor(max_points ** (1.0 / n))))
        axes = [np.linspace(lo[i], hi[i], per_dim) for i in range(n)]
        mesh = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, n)
        mesh = mesh[region.contains(mesh, tol=1e-12)]
        if len(mesh):
            pts_list.append(mesh)
    n_have = sum(len(p) for p in pts_list)
    if n_have < max_points:
        pts_list.append(region.sample(max_points - n_have, rng=rng))
    return np.vstack(pts_list)


def _error_endpoints(sigma_star: Sequence[float]) -> List[Tuple[float, ...]]:
    """Sign combinations of the inclusion error bounds (the ``w`` box
    vertices the verifier certifies); ``[()]``-like single zero vector
    when every bound vanishes."""
    m = len(sigma_star)
    if m == 0 or all(s == 0.0 for s in sigma_star):
        return [tuple([0.0] * m)]
    out: List[Tuple[float, ...]] = [()]
    for s in sigma_star:
        step = [(0.0,)] if s == 0.0 else [(-s,), (+s,)]
        out = [prefix + delta for prefix in out for delta in step]
    return out


def grid_margins(
    result: Any,
    problem: Any,
    max_grid_points: int = 4096,
    seed: int = 0,
) -> Dict[str, Any]:
    """Dense-grid margins of the final candidate on Θ / Ξ / Ψ.

    The candidate is normalized to unit max-coefficient exactly like
    :meth:`repro.verifier.sos_verifier.SOSVerifier.verify`, so the margins
    are on the same scale as the verifier's ``eps`` knobs.  Positive
    margins mean the condition holds strictly on every evaluated point.
    """
    B = result.barrier
    if B is None:
        return {}
    scale = linf_norm(B)
    if scale > 0:
        B = B * (1.0 / scale)
    rng = np.random.default_rng(seed)
    out: Dict[str, Any] = {}

    theta_pts = region_points(problem.theta, max_grid_points, rng)
    out["init"] = {
        "margin": float(np.min(B(theta_pts))),
        "n_points": int(len(theta_pts)),
    }
    xi_pts = region_points(problem.xi, max_grid_points, rng)
    out["unsafe"] = {
        "margin": float(np.min(-B(xi_pts))),
        "n_points": int(len(xi_pts)),
    }

    # Lie margin at every inclusion-error endpoint, using the lambda the
    # SDP found for that endpoint's sub-problem (they may differ).
    inclusion = getattr(result, "inclusion", None)
    h_polys = inclusion.polynomials if inclusion is not None else []
    sigma = inclusion.sigma_star if inclusion is not None else []
    verification = getattr(result, "verification", None)
    lambda_polys = (
        getattr(verification, "lambda_polys", None) or {}
    ) if verification is not None else {}
    default_lam = result.lambda_poly or Polynomial.zero(B.n_vars)
    psi_pts = region_points(problem.psi, max_grid_points, rng)
    endpoints = _error_endpoints([float(s) for s in sigma])
    lie_margin = float("inf")
    for w in endpoints:
        field_polys = problem.system.closed_loop(h_polys, error=list(w))
        lfb = lie_derivative(B, field_polys)
        name = (
            "lie"
            if len(endpoints) == 1
            else f"lie[w={np.round(np.asarray(w), 6).tolist()}]"
        )
        lam = lambda_polys.get(name, default_lam)
        margin = float(np.min(lfb(psi_pts) - lam(psi_pts) * B(psi_pts)))
        lie_margin = min(lie_margin, margin)
    out["lie"] = {
        "margin": lie_margin,
        "n_points": int(len(psi_pts)),
        "n_endpoints": len(endpoints),
    }
    return out


def audit_certificate(
    result: Any,
    problem: Any,
    max_grid_points: int = 4096,
    seed: int = 0,
) -> Dict[str, Any]:
    """Build the audit artifact for one finished SNBC run.

    ``result`` is an :class:`~repro.cegis.snbc.SNBCResult` (duck-typed to
    keep this package import-light); ``problem`` the CCDS it ran on.
    Works for failed runs too — grid margins are then the margins of the
    last (rejected) candidate, which is exactly what one wants to see
    when asking why a run did not converge.
    """
    conditions: List[Dict[str, Any]] = []
    verification = getattr(result, "verification", None)
    if verification is not None:
        for rep in verification.conditions:
            conditions.append(
                {
                    "name": rep.name,
                    "paper_condition": PAPER_CONDITION_NUMBERS.get(
                        _base_condition(rep.name)
                    ),
                    "feasible": bool(rep.feasible),
                    "validated": bool(rep.validated),
                    "min_gram_eigenvalue": float(rep.min_gram_eigenvalue),
                    "residual_bound": float(rep.residual_bound),
                    "elapsed_seconds": float(rep.elapsed_seconds),
                    "sdp": {
                        "status": rep.sdp_status,
                        "iterations": int(rep.sdp_iterations),
                        "gap": float(rep.sdp_gap),
                        "primal_residual": float(rep.sdp_primal_residual),
                        "dual_residual": float(rep.sdp_dual_residual),
                        "convergence": getattr(rep, "sdp_convergence", ""),
                        "recovery_rung": getattr(rep, "sdp_recovery_rung", ""),
                    },
                }
            )
    margins = grid_margins(
        result, problem, max_grid_points=max_grid_points, seed=seed
    )

    def _finite(values: List[float], pick, default=None):
        vals = [v for v in values if math.isfinite(v)]
        return pick(vals) if vals else default

    summary = {
        "min_gram_eigenvalue": _finite(
            [c["min_gram_eigenvalue"] for c in conditions], min
        ),
        "max_residual_bound": _finite(
            [c["residual_bound"] for c in conditions], max
        ),
        "max_sdp_gap": _finite([c["sdp"]["gap"] for c in conditions], max),
        "min_grid_margin": _finite(
            [m["margin"] for m in margins.values()], min
        ),
    }
    lineage = getattr(result, "counterexamples", []) or []
    soundness = getattr(result, "soundness", None)
    return {
        "schema_version": AUDIT_SCHEMA_VERSION,
        "kind": "certificate_audit",
        "problem": getattr(result, "problem_name", "") or problem.name,
        "success": bool(result.success),
        "iterations": int(result.iterations),
        "stalled": bool(getattr(result, "stalled", False)),
        "barrier_degree": (
            int(result.barrier.degree) if result.barrier is not None else None
        ),
        "grid": {"max_points": int(max_grid_points), "seed": int(seed)},
        "conditions": conditions,
        "grid_margins": margins,
        "counterexamples": {
            "total": len(lineage),
            "resolved": sum(1 for c in lineage if c.satisfied_by_final),
        },
        # exact rational recheck (schema-additive; absent on runs that
        # never reached the soundness gate)
        "soundness": soundness.to_dict() if soundness is not None else None,
        "summary": summary,
    }


def write_audit(path: str, audit: Dict[str, Any]) -> str:
    """Serialize an audit artifact as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(audit, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return str(path)


def load_audit(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        audit = json.load(fh)
    if audit.get("schema_version") != AUDIT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported audit schema_version {audit.get('schema_version')!r}"
        )
    return audit
