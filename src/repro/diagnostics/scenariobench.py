"""The ``BENCH_scenarios.json`` schema: obstacle-workload sweep results.

Produced by ``benchmarks/run_bench_scenarios.py`` — a seeded batch of
``repro.soundness.scenarios`` workloads (obstacle-rich regions, one
closed-form barrier each) pushed through the per-cell SOS verifier and
the exact rational recheck.  One document is one batch::

    {
      "schema_version": 1,
      "kind": "BENCH_scenarios",
      "scale": "sweep" | "smoke",
      "generated_at": "<iso8601>",
      "git_sha": "<sha or null>",
      "platform": {...},
      "config": {base_seed, count, time_budget_s},
      "scenarios": {
        "<seed>": {
          "outcome": "certified"|"falsified"|"unsound"|"timeout"|"error",
          "expected": "certifiable"|"infeasible",
          "n_obstacles": <int>,
          "cells": {"init": n, "unsafe": n, "lie": n},
          "psi_spec_key": "<sha256[:16] of the region spec>",
          "soundness_ok": <bool> | null,
          "elapsed_seconds": <float>
        }, ...
      },
      "counts": {total, certified, falsified, unsound, timeout, error},
      "timings": {total_seconds, mean_verify_seconds,
                  max_verify_seconds, per_condition_mean: {...}},
      "invariants": {all_terminal, no_soundness_failures,
                     expectations_met}
    }

``python -m repro.diagnostics.regress`` auto-detects the kind and gates
two such documents hard on **invariants** (every outcome terminal, zero
rational-recheck failures, expectations met), on **per-seed outcome**
(the factory is a pure function of the seed, so any outcome flip is a
real behavior change), on **cell counts** and the **region-spec hash**
per seed (decomposition and canonicalization stability), and on
**coverage**.  Timings are reported but soft — wall clocks are the
machine's business, the geometry is ours.
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry import collect_git_sha, platform_info

SCENARIO_SCHEMA_VERSION = 1
SCENARIO_KIND = "BENCH_scenarios"

_OUTCOME_CLASSES = ("certified", "falsified", "unsound", "timeout", "error")


def scenario_doc(
    scale: str,
    config: Dict[str, Any],
    rows: Sequence[Dict[str, Any]],
    invariants: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one BENCH_scenarios document from factory result rows."""
    scenarios: Dict[str, Dict[str, Any]] = {}
    per_condition: Dict[str, List[float]] = {}
    for row in rows:
        entry: Dict[str, Any] = {
            "outcome": row.get("outcome"),
            "expected": row.get("expected"),
            "n_obstacles": int(row.get("params", {}).get("n_obstacles", 0)),
            "cells": dict(row.get("cells", {})),
            "psi_spec_key": row.get("psi_spec_key"),
            "soundness_ok": row.get("soundness_ok"),
            "elapsed_seconds": float(row.get("elapsed_seconds", 0.0)),
        }
        if row.get("error"):
            entry["error"] = dict(row["error"])
        scenarios[str(row["seed"])] = entry
        for cond in row.get("conditions", []):
            base = str(cond.get("name", "")).split("[", 1)[0]
            per_condition.setdefault(base, []).append(
                float(cond.get("elapsed_seconds", 0.0))
            )

    counts = {"total": len(rows)}
    for outcome in _OUTCOME_CLASSES:
        counts[outcome] = sum(
            1 for row in rows if row.get("outcome") == outcome
        )
    elapsed = [float(row.get("elapsed_seconds", 0.0)) for row in rows]
    timings = {
        "total_seconds": round(sum(elapsed), 6),
        "mean_verify_seconds": round(
            sum(elapsed) / len(elapsed), 6
        ) if elapsed else 0.0,
        "max_verify_seconds": round(max(elapsed), 6) if elapsed else 0.0,
        "per_condition_mean": {
            name: round(sum(vals) / len(vals), 6)
            for name, vals in sorted(per_condition.items())
        },
    }
    if invariants is None:
        from repro.soundness.scenarios import batch_invariants

        invariants = batch_invariants(rows)
    return {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "kind": SCENARIO_KIND,
        "scale": scale,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": collect_git_sha(),
        "platform": platform_info(),
        "config": config,
        "scenarios": scenarios,
        "counts": counts,
        "timings": timings,
        "invariants": dict(invariants),
    }


def write_scenario_bench(path: str, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Atomically write ``doc`` (tmp+rename, like every results file)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def load_scenario_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("kind") != SCENARIO_KIND:
        raise ValueError(f"{path}: not a {SCENARIO_KIND} document")
    if doc.get("schema_version") != SCENARIO_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version "
            f"{doc.get('schema_version')!r} "
            f"(expected {SCENARIO_SCHEMA_VERSION})"
        )
    for field in ("scenarios", "counts", "invariants"):
        if not isinstance(doc.get(field), dict):
            raise ValueError(f"{path}: missing/invalid {field!r}")
    return doc


def compare_scenario_benches(
    old: Dict[str, Any],
    new: Dict[str, Any],
    allow_missing: bool = False,
) -> Dict[str, List[str]]:
    """Gate two BENCH_scenarios documents.

    Hard: the NEW invariants (all outcomes terminal, no rational-recheck
    failure, expectations met), any per-seed outcome flip, any per-seed
    cell-count or region-spec-hash change, and coverage.  Soft: timings
    (reported via the table, never gated).
    """
    regressions: List[str] = []
    warnings: List[str] = []

    inv = new.get("invariants", {})
    if not inv.get("all_terminal", False):
        regressions.append(
            "invariant: not every scenario reached a terminal outcome"
        )
    if not inv.get("no_soundness_failures", False):
        regressions.append(
            "invariant: a certificate failed the exact rational recheck"
        )
    if not inv.get("expectations_met", False):
        regressions.append(
            "invariant: a scenario's outcome contradicts its minted "
            "expectation (certifiable<->infeasible flip)"
        )

    for seed, o in old.get("scenarios", {}).items():
        n = new.get("scenarios", {}).get(seed)
        if n is None:
            (warnings if allow_missing else regressions).append(
                f"seed {seed}: present in OLD but missing from NEW"
            )
            continue
        if n.get("outcome") != o.get("outcome"):
            regressions.append(
                f"seed {seed}: outcome flipped "
                f"({o.get('outcome')} -> {n.get('outcome')})"
            )
            continue
        if n.get("cells") != o.get("cells"):
            regressions.append(
                f"seed {seed}: cell decomposition changed "
                f"({o.get('cells')} -> {n.get('cells')})"
            )
        if n.get("psi_spec_key") != o.get("psi_spec_key"):
            regressions.append(
                f"seed {seed}: region spec hash changed "
                f"({o.get('psi_spec_key')} -> {n.get('psi_spec_key')})"
            )
    return {"regressions": regressions, "warnings": warnings}


def render_scenario_table(
    old: Dict[str, Any], new: Dict[str, Any]
) -> str:
    lines = []
    header = f"{'outcome':<12}{'old':>8}{'new':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for outcome in ("total",) + _OUTCOME_CLASSES:
        lines.append(
            f"{outcome:<12}"
            f"{int(old.get('counts', {}).get(outcome, 0)):>8}"
            f"{int(new.get('counts', {}).get(outcome, 0)):>8}"
        )
    flips = [
        seed
        for seed, o in old.get("scenarios", {}).items()
        if (n := new.get("scenarios", {}).get(seed)) is not None
        and n.get("outcome") != o.get("outcome")
    ]
    lines.append(
        f"outcome flips: {len(flips)}"
        + (f" (seeds {', '.join(sorted(flips)[:10])})" if flips else "")
    )
    o_t = old.get("timings", {})
    n_t = new.get("timings", {})
    lines.append(
        f"mean verify: {float(o_t.get('mean_verify_seconds', 0)):.3f}s"
        f" -> {float(n_t.get('mean_verify_seconds', 0)):.3f}s"
        " (soft)"
    )
    return "\n".join(lines)
