"""NN controllers and their polynomial inclusions.

* :mod:`repro.controllers.controller` — the NN feedback controller
  ``u = k(x)`` (a tanh MLP, optionally saturated);
* :mod:`repro.controllers.lqr` — LQR gains from the linearized plant
  (scipy CARE), used as the cloning target;
* :mod:`repro.controllers.cloning` — behaviour-cloning an expert law into
  an NN controller (the default benchmark controller source, substituting
  for the paper's DDPG training — see DESIGN.md);
* :mod:`repro.controllers.ddpg` — a genuine DDPG implementation on the
  numpy NN stack, runnable on the low-dimensional examples;
* :mod:`repro.controllers.inclusion` — §3's Chebyshev polynomial inclusion
  ``k(x) in h(x) + [-sigma*, sigma*]`` via mesh + linear programming with
  the Theorem 2 Lipschitz gap bound.
"""

from repro.controllers.controller import NNController
from repro.controllers.lqr import lqr_gain, linear_feedback_fn, linearize
from repro.controllers.cloning import behavior_clone
from repro.controllers.ddpg import DDPGConfig, DDPGTrainer, ReplayBuffer
from repro.controllers.inclusion import PolynomialInclusion, polynomial_inclusion

__all__ = [
    "NNController",
    "linearize",
    "lqr_gain",
    "linear_feedback_fn",
    "behavior_clone",
    "DDPGTrainer",
    "DDPGConfig",
    "ReplayBuffer",
    "PolynomialInclusion",
    "polynomial_inclusion",
]
