"""Polynomial inclusion of NN controllers (paper §3).

Computes the Chebyshev (minimax) polynomial approximation of the controller
on a rectangular mesh over the domain by linear programming (problem (5)),
then converts the mesh optimum ``sigma~`` into a domain-wide error bound

    sigma* = sigma~ + s L / 2        (Theorem 2)

where ``s`` is the (effective) mesh spacing and ``L`` a Lipschitz constant
of the controller.  The result is the inclusion
``k(x) in h(x) + [-sigma*, sigma*]`` consumed by the Learner/Verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.optimize import linprog

from repro.controllers.controller import NNController
from repro.poly import Polynomial
from repro.poly.monomials import monomials_upto
from repro.resilience.errors import InclusionError
from repro.resilience.faults import fault_point
from repro.sets import Box
from repro.telemetry import get_telemetry


@dataclass
class PolynomialInclusion:
    """Result of :func:`polynomial_inclusion`.

    Attributes
    ----------
    polynomials:
        One approximating polynomial ``h_j`` per controller output.
    sigma_tilde:
        Mesh minimax errors per output (LP optima, eq. (5)).
    sigma_star:
        Verified domain-wide error bounds per output (Theorem 2).
    spacing:
        Effective mesh spacing actually used.
    lipschitz:
        Lipschitz constant used in the Theorem 2 gap.
    n_mesh_points:
        Number of mesh samples in the LP.
    """

    polynomials: List[Polynomial]
    sigma_tilde: List[float]
    sigma_star: List[float]
    spacing: float
    lipschitz: float
    n_mesh_points: int

    @property
    def worst_sigma_star(self) -> float:
        return max(self.sigma_star)

    def error_intervals(self) -> List[Tuple[float, float]]:
        """Per-output inclusion intervals ``[-sigma*, +sigma*]``."""
        return [(-s, s) for s in self.sigma_star]


def _design_matrix(points: np.ndarray, degree: int) -> np.ndarray:
    """Vandermonde-style matrix of ``[x]_degree`` monomials at mesh points.

    One gather + product over the precomputed power tensor instead of a
    per-monomial python loop; bitwise-identical to the loop since the
    product runs over variables in the same order and ``x**0 == 1.0``
    exactly.
    """
    m, n = points.shape
    basis = monomials_upto(n, degree)
    pows = np.ones((degree + 1, m, n))
    for k in range(1, degree + 1):
        pows[k] = pows[k - 1] * points
    A = np.asarray(basis, dtype=np.int64)  # (t, n) exponent rows
    # gathered[i, t, :] = points[:, i] ** A[t, i]
    gathered = pows[A.T, :, np.arange(n)[:, None]]  # (n, t, m)
    return gathered.prod(axis=0).T  # (m, t)


def _chebyshev_lp(phi: np.ndarray, targets: np.ndarray) -> Tuple[np.ndarray, float]:
    """Solve ``min_h max_i |phi_i . h - k_i|`` as the LP (5)."""
    m, v = phi.shape
    # variables: [h (v), t]; minimize t
    c = np.zeros(v + 1)
    c[-1] = 1.0
    ones = np.ones((m, 1))
    A_ub = np.vstack(
        [np.hstack([phi, -ones]), np.hstack([-phi, -ones])]
    )
    b_ub = np.concatenate([targets, -targets])
    fault_point("inclusion.lp")
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=[(None, None)] * v + [(0, None)],
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"Chebyshev LP failed: {res.message}")
    return res.x[:v], float(res.x[v])


def polynomial_inclusion(
    controller: Union[NNController, Callable[[np.ndarray], np.ndarray]],
    domain: Box,
    degree: int = 2,
    spacing: float = 0.05,
    max_mesh_points: int = 50_000,
    lipschitz: Optional[float] = None,
    error_mode: str = "lipschitz",
    empirical_samples: int = 20_000,
    empirical_safety: float = 1.5,
    rng: Optional[np.random.Generator] = None,
) -> PolynomialInclusion:
    """Compute the polynomial inclusion of a controller on a box domain.

    Parameters
    ----------
    controller:
        An :class:`NNController` (its spectral Lipschitz bound is used
        automatically) or any batched callable; plain callables must supply
        ``lipschitz`` explicitly for the Theorem 2 bound to be sound.
    domain:
        The system domain ``Psi`` (rectangular, per the paper's mesh).
    degree:
        Preassigned degree ``d`` of the approximating polynomial.
    spacing:
        Requested mesh spacing ``s``; widened automatically (and reported)
        if the full grid would exceed ``max_mesh_points``.
    error_mode:
        ``"lipschitz"`` applies the sound Theorem 2 gap ``sigma~ + s L / 2``
        (meaningful only when the mesh actually covers the domain —
        feasible up to roughly 4 dimensions).  ``"empirical"`` fits the LP on
        a uniform random sample and bounds the error by the maximum observed
        on a fresh sample times ``empirical_safety`` — a documented heuristic
        for high-dimensional benchmarks where covering meshes are
        exponentially large (see DESIGN.md).
    """
    if degree < 0:
        raise ValueError("degree must be nonnegative")
    if error_mode not in ("lipschitz", "empirical"):
        raise ValueError("error_mode must be 'lipschitz' or 'empirical'")
    if lipschitz is None:
        if isinstance(controller, NNController):
            lipschitz = controller.lipschitz_bound()
        elif error_mode == "lipschitz":
            raise ValueError(
                "a plain callable controller requires an explicit Lipschitz bound"
            )
        else:
            lipschitz = float("nan")
    rng = rng or np.random.default_rng(0)
    tel = get_telemetry()
    if error_mode == "lipschitz":
        mesh = domain.mesh(spacing, max_points=max_mesh_points)
        eff_spacing = domain.effective_spacing(spacing, max_points=max_mesh_points)
    else:
        mesh = domain.sample(min(max_mesh_points, empirical_samples), rng=rng)
        eff_spacing = float("nan")
    values = np.atleast_2d(np.asarray(controller(mesh), dtype=float))
    if values.shape[0] != mesh.shape[0]:
        values = values.T
    if not np.all(np.isfinite(values)):
        raise InclusionError(
            "controller produced non-finite outputs on the inclusion mesh",
            n_mesh_points=int(mesh.shape[0]),
            n_bad=int(np.sum(~np.isfinite(values))),
        )
    n_outputs = values.shape[1]
    phi = _design_matrix(mesh, degree)

    tel.metrics.gauge("inclusion.mesh_points", mesh.shape[0])
    polys: List[Polynomial] = []
    sigma_tilde: List[float] = []
    sigma_star: List[float] = []
    for j in range(n_outputs):
        with tel.span(
            "inclusion.lp", output=j, n_mesh_points=int(mesh.shape[0]),
            degree=degree, error_mode=error_mode,
        ) as span:
            try:
                h_coeffs, t_opt = _chebyshev_lp(phi, values[:, j])
            except (RuntimeError, ValueError, np.linalg.LinAlgError) as exc:
                tel.metrics.inc("inclusion.lp_failures")
                raise InclusionError(
                    f"Chebyshev LP for output {j} failed: {exc}",
                    cause=exc,
                    output=j,
                    degree=degree,
                    n_mesh_points=int(mesh.shape[0]),
                ) from exc
            h_poly = Polynomial.from_coeff_vector(domain.n_vars, degree, h_coeffs)
            polys.append(h_poly)
            sigma_tilde.append(t_opt)
            if error_mode == "lipschitz":
                sigma_star.append(t_opt + 0.5 * eff_spacing * float(lipschitz))
            else:
                fresh = domain.sample(empirical_samples, rng=rng)
                fresh_vals = np.atleast_2d(np.asarray(controller(fresh), dtype=float))
                if fresh_vals.shape[0] != fresh.shape[0]:
                    fresh_vals = fresh_vals.T
                err = float(np.max(np.abs(fresh_vals[:, j] - h_poly(fresh))))
                sigma_star.append(max(t_opt, err) * empirical_safety)
            span.set_attrs(
                sigma_tilde=t_opt,
                sigma_star=sigma_star[-1],
                lipschitz_slack=sigma_star[-1] - t_opt,
            )
        if tel.enabled:
            tel.metrics.observe("inclusion.lp_seconds", span.duration)
            tel.metrics.observe("inclusion.sigma_tilde", t_opt)
            tel.metrics.observe("inclusion.sigma_star", sigma_star[-1])
            tel.metrics.observe(
                "inclusion.lipschitz_slack", sigma_star[-1] - t_opt
            )
    tel.metrics.gauge("inclusion.lipschitz", float(lipschitz))
    return PolynomialInclusion(
        polynomials=polys,
        sigma_tilde=sigma_tilde,
        sigma_star=sigma_star,
        spacing=eff_spacing,
        lipschitz=float(lipschitz),
        n_mesh_points=mesh.shape[0],
    )
