"""LQR design on the linearized plant.

The benchmark controllers are obtained by behaviour-cloning an expert law
into an NN (see DESIGN.md's substitution table); the expert is the LQR
state feedback ``u = -K x`` computed from the Jacobian linearization of the
control-affine system at the origin via the continuous algebraic Riccati
equation.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np
from scipy.linalg import solve_continuous_are

from repro.dynamics import ControlAffineSystem


def linearize(system: ControlAffineSystem) -> Tuple[np.ndarray, np.ndarray]:
    """Jacobian linearization ``(A, B)`` of the plant at the origin.

    ``A = d f0 / dx |_0`` and ``B = G(0)`` (exact for control-affine
    dynamics).
    """
    n = system.n_vars
    origin = np.zeros(n)
    A = np.zeros((n, n))
    for i, fi in enumerate(system.f0):
        for j in range(n):
            A[i, j] = fi.diff(j)(origin)
    B = np.zeros((n, system.n_inputs))
    for i in range(n):
        for j in range(system.n_inputs):
            B[i, j] = system.G[i][j](origin)
    return A, B


def lqr_gain(
    system: ControlAffineSystem,
    Q: Optional[np.ndarray] = None,
    R: Optional[np.ndarray] = None,
) -> np.ndarray:
    """LQR gain ``K`` with ``u = -K x`` stabilizing the linearization.

    Raises ``ValueError`` when the Riccati solve fails (e.g. the pair is
    not stabilizable); callers may then fall back to a hand-chosen gain.
    """
    A, B = linearize(system)
    n, m = B.shape
    if m == 0:
        raise ValueError("system has no control input")
    Q = np.eye(n) if Q is None else np.asarray(Q, dtype=float)
    R = np.eye(m) if R is None else np.asarray(R, dtype=float)
    try:
        P = solve_continuous_are(A, B, Q, R)
    except Exception as exc:  # scipy raises LinAlgError subclasses
        raise ValueError(f"CARE solve failed: {exc}") from exc
    K = np.linalg.solve(R, B.T @ P)
    return K


def linear_feedback_fn(K: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """Expert law ``x -> -K x`` (batched) for behaviour cloning."""
    K = np.asarray(K, dtype=float)

    def expert(x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return -(x @ K.T)

    return expert
