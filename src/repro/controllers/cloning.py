"""Behaviour cloning: distill an expert control law into an NN controller."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.autodiff import Tensor
from repro.controllers.controller import NNController
from repro.nn import Adam
from repro.sets import SemialgebraicSet


def behavior_clone(
    controller: NNController,
    expert: Callable[[np.ndarray], np.ndarray],
    domain: SemialgebraicSet,
    n_samples: int = 4096,
    epochs: int = 300,
    batch_size: int = 256,
    lr: float = 1e-2,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Train ``controller`` to imitate ``expert`` on the (sampled) domain.

    Returns the final mean-squared imitation error.  This is the default
    route for producing the benchmark NN controllers (a deterministic,
    seconds-scale substitute for DDPG training; DESIGN.md documents why the
    pipeline downstream is indifferent to the training provenance).
    """
    rng = rng or np.random.default_rng(0)
    X = domain.sample(n_samples, rng=rng)
    Y = np.atleast_2d(np.asarray(expert(X), dtype=float))
    if Y.shape[0] != n_samples:
        Y = Y.T
    if Y.shape != (n_samples, controller.n_inputs):
        raise ValueError(
            f"expert output shape {Y.shape} incompatible with "
            f"{controller.n_inputs} inputs"
        )
    opt = Adam(controller.net.parameters(), lr=lr)
    n_batches = max(1, n_samples // batch_size)
    for _ in range(epochs):
        perm = rng.permutation(n_samples)
        for b in range(n_batches):
            idx = perm[b * batch_size : (b + 1) * batch_size]
            opt.zero_grad()
            pred = controller.net(Tensor(X[idx]))
            err = pred - Tensor(Y[idx])
            loss = (err * err).mean()
            loss.backward()
            opt.step()
    final = controller(X)
    return float(np.mean((final - Y) ** 2))
