"""Deep deterministic policy gradient (DDPG) for controller training.

The paper trains its Example 1 controller with DDPG.  This is a genuine
implementation on the numpy NN stack: replay buffer, Ornstein-Uhlenbeck
exploration noise, target networks with Polyak averaging, and the standard
actor/critic updates.  The environment integrates the CCDS plant with a
fixed-step Euler scheme and rewards regulation to the origin while
penalizing domain exit.

For the Table 1 sweep the benchmark registry uses behaviour-cloned LQR
controllers instead (deterministic and fast); DDPG remains available for
the quickstart / Example 1 path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autodiff import Tensor
from repro.controllers.controller import NNController
from repro.dynamics import CCDS
from repro.nn import MLP, Adam


class ReplayBuffer:
    """Fixed-capacity uniform-sampling transition store."""

    def __init__(self, capacity: int, n_vars: int, n_inputs: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.states = np.zeros((capacity, n_vars))
        self.actions = np.zeros((capacity, n_inputs))
        self.rewards = np.zeros(capacity)
        self.next_states = np.zeros((capacity, n_vars))
        self.dones = np.zeros(capacity)
        self._size = 0
        self._pos = 0

    def __len__(self) -> int:
        return self._size

    def push(self, s, a, r, s2, done) -> None:
        i = self._pos
        self.states[i] = s
        self.actions[i] = a
        self.rewards[i] = r
        self.next_states[i] = s2
        self.dones[i] = float(done)
        self._pos = (self._pos + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int, rng: np.random.Generator):
        idx = rng.integers(0, self._size, size=batch_size)
        return (
            self.states[idx],
            self.actions[idx],
            self.rewards[idx],
            self.next_states[idx],
            self.dones[idx],
        )


class OUNoise:
    """Ornstein-Uhlenbeck exploration noise."""

    def __init__(self, n: int, theta: float = 0.15, sigma: float = 0.2, rng=None):
        self.n = n
        self.theta = theta
        self.sigma = sigma
        self.rng = rng or np.random.default_rng()
        self.state = np.zeros(n)

    def reset(self) -> None:
        self.state = np.zeros(self.n)

    def sample(self) -> np.ndarray:
        self.state += -self.theta * self.state + self.sigma * self.rng.normal(size=self.n)
        return self.state.copy()


@dataclass
class DDPGConfig:
    """Hyper-parameters for :class:`DDPGTrainer`."""

    episodes: int = 50
    steps_per_episode: int = 200
    dt: float = 0.02
    gamma: float = 0.99
    tau: float = 0.01
    actor_lr: float = 1e-3
    critic_lr: float = 2e-3
    batch_size: int = 64
    buffer_capacity: int = 50_000
    warmup_steps: int = 500
    action_limit: float = 5.0
    state_penalty: float = 1.0
    action_penalty: float = 0.05
    exit_penalty: float = 50.0
    seed: int = 0


class DDPGTrainer:
    """Train an :class:`NNController` to regulate a CCDS to the origin."""

    def __init__(self, problem: CCDS, config: Optional[DDPGConfig] = None):
        self.problem = problem
        self.cfg = config or DDPGConfig()
        self.rng = np.random.default_rng(self.cfg.seed)
        n, m = problem.system.n_vars, problem.system.n_inputs
        if m == 0:
            raise ValueError("DDPG needs a controlled system")
        self.actor = NNController(
            n, m, hidden=(32, 32), output_scale=self.cfg.action_limit, rng=self.rng
        )
        self.actor_target = NNController(
            n, m, hidden=(32, 32), output_scale=self.cfg.action_limit, rng=self.rng
        )
        self.actor_target.net.load_state_dict(self.actor.net.state_dict())
        self.critic = MLP([n + m, 64, 64, 1], rng=self.rng)
        self.critic_target = MLP([n + m, 64, 64, 1], rng=self.rng)
        self.critic_target.load_state_dict(self.critic.state_dict())
        self.actor_opt = Adam(self.actor.net.parameters(), lr=self.cfg.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=self.cfg.critic_lr)
        self.buffer = ReplayBuffer(self.cfg.buffer_capacity, n, m)
        self.noise = OUNoise(m, rng=self.rng)
        self.episode_returns: List[float] = []

    # ------------------------------------------------------------------
    def _step_env(self, x: np.ndarray, u: np.ndarray) -> Tuple[np.ndarray, float, bool]:
        dx = self.problem.system.rhs(x[None, :], u[None, :])[0]
        x2 = x + self.cfg.dt * dx
        reward = -(
            self.cfg.state_penalty * float(x2 @ x2)
            + self.cfg.action_penalty * float(u @ u)
        ) * self.cfg.dt
        done = not bool(self.problem.psi.contains(x2))
        if done:
            reward -= self.cfg.exit_penalty
        return x2, reward, done

    def _soft_update(self, target, source) -> None:
        tau = self.cfg.tau
        new_state = [
            (1.0 - tau) * t + tau * s
            for t, s in zip(target.state_dict(), source.state_dict())
        ]
        target.load_state_dict(new_state)

    def _update_networks(self) -> None:
        cfg = self.cfg
        s, a, r, s2, d = self.buffer.sample(cfg.batch_size, self.rng)
        # critic update
        a2 = self.actor_target(s2)
        q2 = self.critic_target.predict(np.concatenate([s2, a2], axis=1)).reshape(-1)
        y = r + cfg.gamma * (1.0 - d) * q2
        self.critic_opt.zero_grad()
        q = self.critic(Tensor(np.concatenate([s, a], axis=1))).reshape(-1)
        err = q - Tensor(y)
        ((err * err).mean()).backward()
        self.critic_opt.step()
        # actor update: ascend Q(s, actor(s))
        self.actor_opt.zero_grad()
        action = self.actor.net(Tensor(s))
        q_pi = self.critic(Tensor.cat([Tensor(s), action], axis=1))
        (-(q_pi.mean())).backward()
        self.actor_opt.step()
        self._soft_update(self.critic_target, self.critic)
        self._soft_update(self.actor_target.net, self.actor.net)

    # ------------------------------------------------------------------
    def train(self) -> NNController:
        """Run the training loop; returns the trained actor."""
        cfg = self.cfg
        total_steps = 0
        for _ in range(cfg.episodes):
            x = self.problem.theta.sample(1, rng=self.rng)[0]
            self.noise.reset()
            ep_return = 0.0
            for _ in range(cfg.steps_per_episode):
                u = self.actor(x) + self.noise.sample()
                u = np.clip(u, -cfg.action_limit, cfg.action_limit)
                x2, reward, done = self._step_env(x, u)
                self.buffer.push(x, u, reward, x2, done)
                ep_return += reward
                x = x2
                total_steps += 1
                if len(self.buffer) >= max(cfg.batch_size, cfg.warmup_steps):
                    self._update_networks()
                if done:
                    break
            self.episode_returns.append(ep_return)
        return self.actor
