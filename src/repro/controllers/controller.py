"""The NN feedback controller ``u = k(x)``."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import MLP
from repro.nn.lipschitz import lipsdp_lipschitz_bound, spectral_lipschitz_bound


class NNController:
    """A neural feedback law mapping states to control inputs.

    Wraps an :class:`~repro.nn.mlp.MLP` with convenience evaluation and a
    sound Lipschitz bound (needed by Theorem 2).  The paper treats the
    single-output case; multiple outputs are handled component-wise by the
    inclusion machinery.
    """

    def __init__(
        self,
        n_vars: int,
        n_inputs: int = 1,
        hidden: Sequence[int] = (16, 16),
        activation: str = "tanh",
        output_scale: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_vars < 1 or n_inputs < 1:
            raise ValueError("n_vars and n_inputs must be positive")
        self.n_vars = int(n_vars)
        self.n_inputs = int(n_inputs)
        self.net = MLP(
            [n_vars, *hidden, n_inputs],
            activation=activation,
            output_scale=output_scale,
            rng=rng,
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``u = k(x)``; single point -> (n_inputs,), batch -> (m, n_inputs)."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        out = self.net.predict(np.atleast_2d(x))
        return out[0] if single else out

    def lipschitz_bound(self, method: str = "auto") -> float:
        """Sound Lipschitz upper bound.

        ``method='auto'`` uses LipSDP-Neuron (the paper's reference [6])
        when the architecture supports it — one hidden layer — and falls
        back to the spectral-norm product otherwise; ``'spectral'`` /
        ``'lipsdp'`` force a choice.  The tightest available bound directly
        shrinks the inclusion error sigma* of Theorem 2.
        """
        if method not in ("auto", "spectral", "lipsdp"):
            raise ValueError("method must be auto|spectral|lipsdp")
        if method == "spectral":
            return spectral_lipschitz_bound(self.net)
        if method == "lipsdp":
            return lipsdp_lipschitz_bound(self.net)
        try:
            return min(
                lipsdp_lipschitz_bound(self.net),
                spectral_lipschitz_bound(self.net),
            )
        except (ValueError, RuntimeError):
            return spectral_lipschitz_bound(self.net)

    def __repr__(self) -> str:
        return (
            f"NNController(n_vars={self.n_vars}, n_inputs={self.n_inputs}, "
            f"net={self.net!r})"
        )
