"""Control-affine dynamics and the CCDS safety-verification triple."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.poly import Polynomial
from repro.sets import SemialgebraicSet


class ControlAffineSystem:
    """``xdot = f0(x) + G(x) u`` with polynomial ``f0`` and ``G``.

    Parameters
    ----------
    f0:
        Drift: one polynomial per state, all in ``n`` variables.
    G:
        Input matrix: ``G[i][j]`` multiplies input ``u_j`` in state ``i``.
        Entries may be ``Polynomial`` or float constants.
    """

    def __init__(
        self,
        f0: Sequence[Polynomial],
        G: Sequence[Sequence],
    ):
        self.n_vars = len(f0)
        if self.n_vars == 0:
            raise ValueError("empty drift")
        if any(p.n_vars != self.n_vars for p in f0):
            raise ValueError("drift components must be polynomials in n_vars")
        self.f0: Tuple[Polynomial, ...] = tuple(f0)
        if len(G) != self.n_vars:
            raise ValueError("G must have one row per state")
        n_inputs = len(G[0]) if G[0] is not None and len(G) else 0
        rows: List[Tuple[Polynomial, ...]] = []
        for row in G:
            if len(row) != n_inputs:
                raise ValueError("G rows must have equal length")
            converted = []
            for entry in row:
                if isinstance(entry, Polynomial):
                    if entry.n_vars != self.n_vars:
                        raise ValueError("G entries must match n_vars")
                    converted.append(entry)
                else:
                    converted.append(Polynomial.constant(self.n_vars, float(entry)))
            rows.append(tuple(converted))
        self.G: Tuple[Tuple[Polynomial, ...], ...] = tuple(rows)
        self.n_inputs = n_inputs

    # ------------------------------------------------------------------
    @classmethod
    def autonomous(cls, f0: Sequence[Polynomial]) -> "ControlAffineSystem":
        """A system with no control input."""
        return cls(f0, [[] for _ in f0])

    @classmethod
    def single_input(
        cls, f0: Sequence[Polynomial], input_rows: Sequence[float]
    ) -> "ControlAffineSystem":
        """Single-input system; ``input_rows[i]`` is the constant gain of
        ``u`` on state ``i`` (the common "u enters one equation" case)."""
        return cls(f0, [[g] for g in input_rows])

    # ------------------------------------------------------------------
    def degree(self) -> int:
        """Max degree over drift and input-matrix entries (Table 1's d_f)."""
        d = max(p.degree for p in self.f0)
        for row in self.G:
            for g in row:
                d = max(d, g.degree)
        return d

    def closed_loop(
        self,
        controller_polys: Sequence[Polynomial],
        error: Optional[Sequence[float]] = None,
    ) -> Tuple[Polynomial, ...]:
        """Polynomial closed-loop field with ``u_j = h_j(x) + w_j``.

        ``error`` supplies fixed ``w_j`` offsets (endpoints of the inclusion
        interval); omit for the nominal ``w = 0`` loop.
        """
        if len(controller_polys) != self.n_inputs:
            raise ValueError(
                f"need {self.n_inputs} controller polynomials, got "
                f"{len(controller_polys)}"
            )
        w = list(error) if error is not None else [0.0] * self.n_inputs
        if len(w) != self.n_inputs:
            raise ValueError("error vector length mismatch")
        field_out = []
        for i in range(self.n_vars):
            fi = self.f0[i]
            for j in range(self.n_inputs):
                fi = fi + self.G[i][j] * (controller_polys[j] + float(w[j]))
            field_out.append(fi)
        return tuple(field_out)

    def rhs(self, x: np.ndarray, u: Optional[np.ndarray] = None) -> np.ndarray:
        """Numeric right-hand side for simulation; batched over rows of x."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if u is None:
            u = np.zeros((x.shape[0], self.n_inputs))
        u = np.atleast_2d(np.asarray(u, dtype=float))
        if u.shape != (x.shape[0], self.n_inputs):
            u = np.broadcast_to(u, (x.shape[0], self.n_inputs))
        out = np.zeros((x.shape[0], self.n_vars))
        for i in range(self.n_vars):
            out[:, i] = self.f0[i](x)
            for j in range(self.n_inputs):
                out[:, i] += self.G[i][j](x) * u[:, j]
        return out

    def input_gain_polys(self, gradient: Sequence[Polynomial]) -> List[Polynomial]:
        """``(grad B . G)_j`` — the polynomial multiplying ``u_j`` (and its
        inclusion error) inside ``L_f B``; the verifier bounds its worst-case
        sign when handling ``w in [-sigma*, sigma*]``."""
        out = []
        for j in range(self.n_inputs):
            acc = Polynomial.zero(self.n_vars)
            for i in range(self.n_vars):
                acc = acc + gradient[i] * self.G[i][j]
            out.append(acc)
        return out

    def __repr__(self) -> str:
        return (
            f"ControlAffineSystem(n_vars={self.n_vars}, n_inputs={self.n_inputs}, "
            f"degree={self.degree()})"
        )


@dataclass
class CCDS:
    """A safety-verification instance ``<f, Theta, Psi>`` with unsafe set Xi.

    Attributes mirror the paper's triple plus the unsafe region: the system
    is *safe* when no trajectory from ``theta`` reaches ``xi`` while staying
    in ``psi``.
    """

    system: ControlAffineSystem
    theta: SemialgebraicSet  # initial set
    psi: SemialgebraicSet  # domain
    xi: SemialgebraicSet  # unsafe region
    name: str = ""
    source: str = ""
    notes: str = ""

    def __post_init__(self):
        n = self.system.n_vars
        for label, s in (("theta", self.theta), ("psi", self.psi), ("xi", self.xi)):
            if s.n_vars != n:
                raise ValueError(f"{label} dimension {s.n_vars} != system {n}")

    @property
    def n_vars(self) -> int:
        return self.system.n_vars

    def __repr__(self) -> str:
        return f"CCDS({self.name or 'unnamed'}, n={self.n_vars})"
