"""Controlled continuous dynamical systems (CCDS).

Models the paper's plant ``xdot = f(x, u)`` with ``u = k(x)`` in the
control-affine form

    xdot = f0(x) + G(x) u,

which covers every benchmark in Table 1 and makes the polynomial-inclusion
substitution ``u = h(x) + w`` exact: the closed loop stays polynomial with
an affine dependence on the inclusion error ``w``.
"""

from repro.dynamics.system import CCDS, ControlAffineSystem

__all__ = ["ControlAffineSystem", "CCDS"]
