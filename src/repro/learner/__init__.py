"""The SNBC Learner: joint training of the neural BC and multiplier (§4.1).

* :mod:`repro.learner.datasets` — the sampled training sets ``S_I``, ``S_U``,
  ``S_D`` and their augmentation with counterexamples;
* :mod:`repro.learner.loss` — the empirical violation loss (10) with the
  LeakyReLU surrogate for ``max(eps, .)``;
* :mod:`repro.learner.trainer` — Adam-based joint training of the quadratic
  network ``B(x)`` and the multiplier network ``lambda(x)``, with the Lie
  term computed by tangent propagation (no second-order autodiff needed).
"""

from repro.learner.datasets import TrainingData
from repro.learner.loss import BarrierLossTerms, barrier_loss
from repro.learner.trainer import BarrierLearner, LearnerConfig

__all__ = [
    "TrainingData",
    "barrier_loss",
    "BarrierLossTerms",
    "BarrierLearner",
    "LearnerConfig",
]
