"""The empirical barrier-violation loss (paper eq. (10)).

``L = L_D + L_I + L_U`` penalizes, with LeakyReLU standing in for
``max(eps, .)``:

* ``L_I``: ``B(s) < eps`` on the initial set (condition (i)),
* ``L_U``: ``B(s) > -eps`` on the unsafe set (condition (ii)),
* ``L_D``: ``L_f B(s) - lambda(s) B(s) < eps`` on the domain
  (condition (iii)).

Note: equation (10) as printed uses ``L_f B(s) - lambda(s)``; condition
(iii) of Theorem 1 subtracts the *product* ``lambda(x) B(x)``.  The product
form is the default here (it is what the Verifier certifies); the printed
form is available via ``paper_printed_form=True`` for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor
from repro.learner.datasets import TrainingData
from repro.nn.layers import Module
from repro.poly import Polynomial


@dataclass
class BarrierLossTerms:
    """The three sub-losses and their weighted total (floats, for logging)."""

    total: float
    init: float
    unsafe: float
    domain: float


def field_values(field: Sequence[Polynomial], points: np.ndarray) -> np.ndarray:
    """Evaluate a polynomial vector field on a batch: shape ``(m, n)``."""
    from repro.poly.fast_eval import compile_field

    return compile_field(field)(points)


def barrier_loss(
    b_net: Module,
    lambda_net: Module,
    data: TrainingData,
    domain_field_values: np.ndarray,
    eps: float = 0.01,
    etas: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    negative_slope: float = 0.0,
    paper_printed_form: bool = False,
    gain_field_values: Sequence[np.ndarray] = (),
    sigma_star: Sequence[float] = (),
    _components: Optional[dict] = None,
) -> Tuple[Tensor, BarrierLossTerms]:
    """Build the differentiable loss (10) for one optimization step.

    ``domain_field_values`` are the closed-loop field evaluations at
    ``data.s_domain`` (constant w.r.t. the trainable parameters, so they are
    precomputed once per CEGIS round).

    When the controller carries a nonzero inclusion error, passing the
    per-input gain fields ``G_j`` (evaluated at the domain samples) and the
    bounds ``sigma*_j`` trains the *robust* Lie margin
    ``L_f B - sum_j sigma*_j |grad B . G_j| - lambda B``, matching what the
    Verifier certifies at the error endpoints.
    """
    eta_d, eta_i, eta_u = etas

    # L_I: want B >= 0 on Theta  -> penalize (eps - B)
    b_init = b_net(Tensor(data.s_init))
    loss_i = (Tensor(np.full(len(data.s_init), eps)) - b_init).leaky_relu(
        negative_slope
    ).mean()

    # L_U: want B < 0 on Xi -> penalize (B + eps)
    b_unsafe = b_net(Tensor(data.s_unsafe))
    loss_u = (b_unsafe + eps).leaky_relu(negative_slope).mean()

    # L_D: want L_f B - lambda * B > 0 on Psi -> penalize (eps - that)
    b_dom, lie = b_net.forward_with_tangent(
        Tensor(data.s_domain), Tensor(domain_field_values)
    )
    lam = lambda_net(Tensor(data.s_domain))
    if paper_printed_form:
        margin = lie - lam
    else:
        margin = lie - lam * b_dom
    for g_vals, s in zip(gain_field_values, sigma_star):
        if s <= 0.0:
            continue
        _, gain = b_net.forward_with_tangent(
            Tensor(data.s_domain), Tensor(g_vals)
        )
        margin = margin - gain.abs() * float(s)
    loss_d = (Tensor(np.full(len(data.s_domain), eps)) - margin).leaky_relu(
        negative_slope
    ).mean()

    total = loss_d * eta_d + loss_i * eta_i + loss_u * eta_u
    if _components is not None:
        # hand the component tensors to tape-replay callers so they can
        # recompute BarrierLossTerms without rebuilding the graph
        _components.update(init=loss_i, unsafe=loss_u, domain=loss_d)
    terms = BarrierLossTerms(
        total=total.item(),
        init=loss_i.item(),
        unsafe=loss_u.item(),
        domain=loss_d.item(),
    )
    return total, terms
