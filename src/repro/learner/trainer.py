"""Joint training of the neural BC and multiplier networks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff import Tape, TapeUnsupportedOp
from repro.learner.datasets import TrainingData
from repro.learner.loss import BarrierLossTerms, barrier_loss, field_values
from repro.nn import (
    Adam,
    ConstantMultiplier,
    LinearMultiplier,
    QuadraticNetwork,
    SquareNetwork,
)
from repro.poly import Polynomial
from repro.resilience.errors import LearnerDivergence
from repro.resilience.faults import fired
from repro.telemetry import get_telemetry


@dataclass
class LearnerConfig:
    """Hyper-parameters of the Learner (paper §4.1).

    ``b_hidden`` mirrors Table 1's ``NN_B`` column (hidden widths of the
    quadratic network; one hidden layer gives a degree-2 barrier).
    ``lambda_hidden`` mirrors ``NN_lambda``; ``None`` selects the constant
    multiplier (Table 1's ``c``).
    """

    b_hidden: Tuple[int, ...] = (10,)
    lambda_hidden: Optional[Tuple[int, ...]] = (5,)
    epochs: int = 300
    lr: float = 0.02
    eps: float = 0.05
    etas: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    #: slope of the LeakyReLU surrogate for max(eps, .).  0 is the exact
    #: hinge (satisfied samples contribute no gradient, like the paper's
    #: max); small positive values smooth it but reward margin inflation.
    negative_slope: float = 0.0
    loss_tolerance: float = -1.0  # stop early when total loss drops below
    b_architecture: str = "quadratic"  # or "square" (ablation)
    paper_printed_form: bool = False
    #: initialize B as a Lyapunov-shaped quadratic ``c - x^T P x`` when the
    #: architecture allows it (one hidden layer); see SNBC._warm_start
    warm_start: bool = True
    seed: int = 0
    #: replay the loss graph with :class:`repro.autodiff.Tape` after the
    #: first epoch of each fit (bitwise-identical, skips per-epoch graph
    #: construction); falls back silently when the graph has unsupported ops
    use_tape: bool = True
    #: when the training set grows (append-only counterexample rows),
    #: evaluate the closed-loop field only on the newly appended rows
    incremental_field_values: bool = True


class BarrierLearner:
    """Trains ``B(x)`` (quadratic net) and ``lambda(x)`` (linear net).

    The same Learner instance persists across CEGIS rounds so retraining
    refines the current candidate rather than restarting from scratch.
    """

    def __init__(
        self,
        n_vars: int,
        config: Optional[LearnerConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.n_vars = int(n_vars)
        self.config = config or LearnerConfig()
        # an injected generator lets SNBC derive all component streams
        # from one seed chain; standalone use keeps the config seed
        rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        arch = [n_vars, *self.config.b_hidden]
        if self.config.b_architecture == "quadratic":
            self.b_net = QuadraticNetwork(arch, rng=rng)
        elif self.config.b_architecture == "square":
            self.b_net = SquareNetwork(arch, rng=rng)
        else:
            raise ValueError(
                f"unknown b_architecture {self.config.b_architecture!r}"
            )
        if self.config.lambda_hidden is None:
            self.lambda_net = ConstantMultiplier(n_vars, init=-0.1)
        else:
            self.lambda_net = LinearMultiplier(
                [n_vars, *self.config.lambda_hidden, 1], rng=rng, init_output=-0.1
            )
        params = self.b_net.parameters() + self.lambda_net.parameters()
        self._params = params  # parameter discovery walks the module tree
        self.optimizer = Adam(params, lr=self.config.lr)
        self.loss_history: List[BarrierLossTerms] = []
        #: field fingerprint -> (points evaluated, values) for incremental
        #: re-evaluation across CEGIS rounds
        self._field_cache: dict = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        data: TrainingData,
        closed_loop_field: Sequence[Polynomial],
        epochs: Optional[int] = None,
        gain_fields: Sequence[Sequence[Polynomial]] = (),
        sigma_star: Sequence[float] = (),
    ) -> BarrierLossTerms:
        """Run full-batch Adam on loss (10); returns the final loss terms.

        ``gain_fields``/``sigma_star`` activate the robust Lie margin for
        controllers with a nonzero inclusion error (see
        :func:`repro.learner.loss.barrier_loss`).
        """
        cfg = self.config
        tel = get_telemetry()
        f_vals = self._field_values(closed_loop_field, data.s_domain)
        g_vals = [self._field_values(g, data.s_domain) for g in gain_fields]
        last: Optional[BarrierLossTerms] = None
        max_epochs = epochs if epochs is not None else cfg.epochs
        with tel.span(
            "learner.fit", epochs=max_epochs, n_domain=len(data.s_domain)
        ) as span:
            epochs_run = 0
            converged = False
            tape: Optional[Tape] = None
            components: dict = {}
            loss = None
            use_tape = cfg.use_tape
            for _ in range(max_epochs):
                self.optimizer.zero_grad()
                if tape is None:
                    loss, terms = barrier_loss(
                        self.b_net,
                        self.lambda_net,
                        data,
                        f_vals,
                        eps=cfg.eps,
                        etas=cfg.etas,
                        negative_slope=cfg.negative_slope,
                        paper_printed_form=cfg.paper_printed_form,
                        gain_field_values=g_vals,
                        sigma_star=sigma_star,
                        _components=components,
                    )
                    loss.backward()
                    if use_tape:
                        # replay the captured graph for the remaining
                        # epochs — bitwise-identical to rebuilding it
                        try:
                            tape = Tape(loss)
                            tel.metrics.inc("learner.tape.traces")
                        except TapeUnsupportedOp:
                            use_tape = False
                            tel.metrics.inc("learner.tape.fallbacks")
                else:
                    tape.run()
                    tel.metrics.inc("learner.tape.replays")
                    terms = BarrierLossTerms(
                        total=loss.item(),
                        init=components["init"].item(),
                        unsafe=components["unsafe"].item(),
                        domain=components["domain"].item(),
                    )
                if fired("learner.gradients"):
                    for p in self._params:
                        if p.grad is not None:
                            p.grad = np.full_like(
                                np.asarray(p.grad, dtype=float), np.nan
                            )
                grad_norm = self._grad_norm()
                if tel.enabled:
                    tel.metrics.observe("learner.epoch_loss", terms.total)
                    tel.metrics.observe("learner.grad_norm", grad_norm)
                    # throttled heartbeat (StatusWriter rate-limits writes)
                    tel.status_update(
                        learner_epoch=epochs_run + 1, learner_loss=terms.total
                    )
                if not np.isfinite(terms.total) or not np.isfinite(grad_norm):
                    # stop before the step poisons the weights: the caller
                    # still holds a finite parameter state it can restore
                    tel.metrics.inc("learner.divergence")
                    span.set_attrs(diverged=True, epochs_run=epochs_run)
                    raise LearnerDivergence(
                        "non-finite training signal at epoch "
                        f"{epochs_run + 1}: loss={terms.total!r}, "
                        f"grad_norm={grad_norm!r}",
                        epoch=epochs_run + 1,
                        loss=float(terms.total),
                        grad_norm=float(grad_norm),
                    )
                self.optimizer.step()
                epochs_run += 1
                last = terms
                self.loss_history.append(terms)
                if terms.total < cfg.loss_tolerance:
                    converged = True
                    break
            tel.metrics.inc("learner.epochs", epochs_run)
            if converged:
                tel.metrics.observe("learner.epochs_to_converge", epochs_run)
            assert last is not None
            span.set_attrs(
                epochs_run=epochs_run, converged=converged, final_loss=last.total
            )
        return last

    # ------------------------------------------------------------------
    def _field_values(
        self, field: Sequence[Polynomial], points: np.ndarray
    ) -> np.ndarray:
        """Field evaluations at ``points``, reusing rows evaluated in
        earlier CEGIS rounds when the dataset only grew (append-only
        counterexample rows keep the prefix bitwise-unchanged)."""
        if not self.config.incremental_field_values:
            return field_values(field, points)
        from repro.poly.fast_eval import _field_key

        tel = get_telemetry()
        key = _field_key(field)
        cached = self._field_cache.get(key)
        if cached is not None:
            old_pts, old_vals = cached
            n_old = old_pts.shape[0]
            if points.shape[0] >= n_old and np.array_equal(
                points[:n_old], old_pts
            ):
                if tel.enabled:
                    tel.metrics.inc("learner.field_cache.hits")
                if points.shape[0] == n_old:
                    return old_vals
                new_vals = field_values(field, points[n_old:])
                vals = np.vstack([old_vals, new_vals])
                self._field_cache[key] = (points, vals)
                return vals
        if tel.enabled:
            tel.metrics.inc("learner.field_cache.misses")
        vals = field_values(field, points)
        self._field_cache[key] = (points, vals)
        return vals

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe copy of the trainable state: every parameter plus
        the optimizer moments.  Serves both in-memory rollback (restore
        after a diverged ``fit``) and CEGIS checkpoints — floats survive
        the JSON round trip exactly, so a restore is bit-identical."""
        return {
            "params": [
                {"shape": list(p.data.shape), "data": p.data.ravel().tolist()}
                for p in self._params
            ],
            "optimizer": self.optimizer.state_dict(),
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` back into the live networks (in place)."""
        params = state["params"]
        if len(params) != len(self._params):
            raise ValueError(
                f"snapshot has {len(params)} parameters, "
                f"learner has {len(self._params)}"
            )
        for p, s in zip(self._params, params):
            arr = np.asarray(s["data"], dtype=float).reshape(s["shape"])
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"snapshot parameter shape {arr.shape} != {p.data.shape}"
                )
            p.data = arr
        self.optimizer.load_state_dict(state["optimizer"])

    def _grad_norm(self) -> float:
        """Global l2 norm of all parameter gradients (diagnostics)."""
        total = 0.0
        for p in self._params:
            if p.grad is not None:
                g = np.asarray(p.grad).ravel()
                total += float(g @ g)
        return float(np.sqrt(total))

    def candidate(self) -> Tuple[Polynomial, Polynomial]:
        """Extract the symbolic candidate ``(B~, lambda~)``."""
        return self.b_net.to_polynomial(), self.lambda_net.to_polynomial()

    def empirical_violations(
        self,
        data: TrainingData,
        closed_loop_field: Sequence[Polynomial],
    ) -> Tuple[int, int, int]:
        """Count raw condition violations on the datasets (diagnostics)."""
        B, lam = self.candidate()
        from repro.poly import lie_derivative

        lfb = lie_derivative(B, closed_loop_field)
        n_i = int(np.sum(B(data.s_init) < 0.0))
        n_u = int(np.sum(B(data.s_unsafe) >= 0.0))
        margin = lfb(data.s_domain) - lam(data.s_domain) * B(data.s_domain)
        n_d = int(np.sum(margin <= 0.0))
        return n_i, n_u, n_d
