"""Joint training of the neural BC and multiplier networks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.learner.datasets import TrainingData
from repro.learner.loss import BarrierLossTerms, barrier_loss, field_values
from repro.nn import (
    Adam,
    ConstantMultiplier,
    LinearMultiplier,
    QuadraticNetwork,
    SquareNetwork,
)
from repro.poly import Polynomial
from repro.telemetry import get_telemetry


@dataclass
class LearnerConfig:
    """Hyper-parameters of the Learner (paper §4.1).

    ``b_hidden`` mirrors Table 1's ``NN_B`` column (hidden widths of the
    quadratic network; one hidden layer gives a degree-2 barrier).
    ``lambda_hidden`` mirrors ``NN_lambda``; ``None`` selects the constant
    multiplier (Table 1's ``c``).
    """

    b_hidden: Tuple[int, ...] = (10,)
    lambda_hidden: Optional[Tuple[int, ...]] = (5,)
    epochs: int = 300
    lr: float = 0.02
    eps: float = 0.05
    etas: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    #: slope of the LeakyReLU surrogate for max(eps, .).  0 is the exact
    #: hinge (satisfied samples contribute no gradient, like the paper's
    #: max); small positive values smooth it but reward margin inflation.
    negative_slope: float = 0.0
    loss_tolerance: float = -1.0  # stop early when total loss drops below
    b_architecture: str = "quadratic"  # or "square" (ablation)
    paper_printed_form: bool = False
    #: initialize B as a Lyapunov-shaped quadratic ``c - x^T P x`` when the
    #: architecture allows it (one hidden layer); see SNBC._warm_start
    warm_start: bool = True
    seed: int = 0


class BarrierLearner:
    """Trains ``B(x)`` (quadratic net) and ``lambda(x)`` (linear net).

    The same Learner instance persists across CEGIS rounds so retraining
    refines the current candidate rather than restarting from scratch.
    """

    def __init__(
        self,
        n_vars: int,
        config: Optional[LearnerConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.n_vars = int(n_vars)
        self.config = config or LearnerConfig()
        # an injected generator lets SNBC derive all component streams
        # from one seed chain; standalone use keeps the config seed
        rng = rng if rng is not None else np.random.default_rng(self.config.seed)
        arch = [n_vars, *self.config.b_hidden]
        if self.config.b_architecture == "quadratic":
            self.b_net = QuadraticNetwork(arch, rng=rng)
        elif self.config.b_architecture == "square":
            self.b_net = SquareNetwork(arch, rng=rng)
        else:
            raise ValueError(
                f"unknown b_architecture {self.config.b_architecture!r}"
            )
        if self.config.lambda_hidden is None:
            self.lambda_net = ConstantMultiplier(n_vars, init=-0.1)
        else:
            self.lambda_net = LinearMultiplier(
                [n_vars, *self.config.lambda_hidden, 1], rng=rng, init_output=-0.1
            )
        params = self.b_net.parameters() + self.lambda_net.parameters()
        self.optimizer = Adam(params, lr=self.config.lr)
        self.loss_history: List[BarrierLossTerms] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        data: TrainingData,
        closed_loop_field: Sequence[Polynomial],
        epochs: Optional[int] = None,
        gain_fields: Sequence[Sequence[Polynomial]] = (),
        sigma_star: Sequence[float] = (),
    ) -> BarrierLossTerms:
        """Run full-batch Adam on loss (10); returns the final loss terms.

        ``gain_fields``/``sigma_star`` activate the robust Lie margin for
        controllers with a nonzero inclusion error (see
        :func:`repro.learner.loss.barrier_loss`).
        """
        cfg = self.config
        tel = get_telemetry()
        f_vals = field_values(closed_loop_field, data.s_domain)
        g_vals = [field_values(g, data.s_domain) for g in gain_fields]
        last: Optional[BarrierLossTerms] = None
        max_epochs = epochs if epochs is not None else cfg.epochs
        with tel.span(
            "learner.fit", epochs=max_epochs, n_domain=len(data.s_domain)
        ) as span:
            epochs_run = 0
            converged = False
            for _ in range(max_epochs):
                self.optimizer.zero_grad()
                loss, terms = barrier_loss(
                    self.b_net,
                    self.lambda_net,
                    data,
                    f_vals,
                    eps=cfg.eps,
                    etas=cfg.etas,
                    negative_slope=cfg.negative_slope,
                    paper_printed_form=cfg.paper_printed_form,
                    gain_field_values=g_vals,
                    sigma_star=sigma_star,
                )
                loss.backward()
                if tel.enabled:
                    tel.metrics.observe("learner.epoch_loss", terms.total)
                    tel.metrics.observe("learner.grad_norm", self._grad_norm())
                self.optimizer.step()
                epochs_run += 1
                last = terms
                self.loss_history.append(terms)
                if terms.total < cfg.loss_tolerance:
                    converged = True
                    break
            tel.metrics.inc("learner.epochs", epochs_run)
            if converged:
                tel.metrics.observe("learner.epochs_to_converge", epochs_run)
            assert last is not None
            span.set_attrs(
                epochs_run=epochs_run, converged=converged, final_loss=last.total
            )
        return last

    def _grad_norm(self) -> float:
        """Global l2 norm of all parameter gradients (diagnostics)."""
        total = 0.0
        for p in self.b_net.parameters() + self.lambda_net.parameters():
            if p.grad is not None:
                total += float(np.sum(np.asarray(p.grad) ** 2))
        return float(np.sqrt(total))

    def candidate(self) -> Tuple[Polynomial, Polynomial]:
        """Extract the symbolic candidate ``(B~, lambda~)``."""
        return self.b_net.to_polynomial(), self.lambda_net.to_polynomial()

    def empirical_violations(
        self,
        data: TrainingData,
        closed_loop_field: Sequence[Polynomial],
    ) -> Tuple[int, int, int]:
        """Count raw condition violations on the datasets (diagnostics)."""
        B, lam = self.candidate()
        from repro.poly import lie_derivative

        lfb = lie_derivative(B, closed_loop_field)
        n_i = int(np.sum(B(data.s_init) < 0.0))
        n_u = int(np.sum(B(data.s_unsafe) >= 0.0))
        margin = lfb(data.s_domain) - lam(data.s_domain) * B(data.s_domain)
        n_d = int(np.sum(margin <= 0.0))
        return n_i, n_u, n_d
