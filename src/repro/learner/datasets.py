"""Training datasets for the Learner.

Three point sets, one per barrier condition: ``S_I`` sampled from the
initial set Theta, ``S_U`` from the unsafe set Xi, ``S_D`` from the domain
Psi.  The paper instantiates them with equal batch sizes and appends
generated counterexamples to the relevant set before retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dynamics import CCDS
from repro.sets import Ball, Box, SemialgebraicSet


def _with_boundary(
    region: SemialgebraicSet,
    n: int,
    boundary_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Interior samples plus a fraction placed on the set boundary."""
    n_boundary = int(round(n * boundary_fraction))
    interior = region.sample(n - n_boundary, rng=rng) if n - n_boundary else (
        np.zeros((0, region.n_vars))
    )
    if n_boundary == 0:
        return interior
    if isinstance(region, Ball):
        direction = rng.normal(size=(n_boundary, region.n_vars))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        boundary = region.center + region.radius * direction
    elif isinstance(region, Box):
        boundary = region.sample(n_boundary, rng=rng)
        axes = rng.integers(0, region.n_vars, size=n_boundary)
        sides = rng.integers(0, 2, size=n_boundary)
        for i in range(n_boundary):
            boundary[i, axes[i]] = (
                region.lo[axes[i]] if sides[i] == 0 else region.hi[axes[i]]
            )
    else:  # generic set: no cheap boundary parametrization
        boundary = region.sample(n_boundary, rng=rng)
    return np.vstack([interior, boundary])


@dataclass
class TrainingData:
    """The sampled sets ``S_I``, ``S_U``, ``S_D`` (rows are points)."""

    s_init: np.ndarray
    s_unsafe: np.ndarray
    s_domain: np.ndarray

    @classmethod
    def sample(
        cls,
        problem: CCDS,
        n_per_set: int = 500,
        rng: Optional[np.random.Generator] = None,
        boundary_fraction: float = 0.3,
    ) -> "TrainingData":
        """Equal-size samples from Theta, Xi and Psi.

        A ``boundary_fraction`` of the Theta and Xi points is placed on the
        set boundary, where conditions (i)/(ii) are tight — interior-only
        sampling systematically misses the worst points in high dimension.
        """
        if n_per_set < 1:
            raise ValueError("n_per_set must be positive")
        if not 0.0 <= boundary_fraction <= 1.0:
            raise ValueError("boundary_fraction must be in [0, 1]")
        rng = rng or np.random.default_rng()
        return cls(
            s_init=_with_boundary(problem.theta, n_per_set, boundary_fraction, rng),
            s_unsafe=_with_boundary(problem.xi, n_per_set, boundary_fraction, rng),
            s_domain=problem.psi.sample(n_per_set, rng=rng),
        )

    # ------------------------------------------------------------------
    def add_init(self, points: np.ndarray) -> None:
        """Append counterexamples violating condition (i)."""
        self.s_init = np.vstack([self.s_init, np.atleast_2d(points)])

    def add_unsafe(self, points: np.ndarray) -> None:
        """Append counterexamples violating condition (ii)."""
        self.s_unsafe = np.vstack([self.s_unsafe, np.atleast_2d(points)])

    def add_domain(self, points: np.ndarray) -> None:
        """Append counterexamples violating condition (iii)."""
        self.s_domain = np.vstack([self.s_domain, np.atleast_2d(points)])

    def sizes(self) -> tuple:
        return (len(self.s_init), len(self.s_unsafe), len(self.s_domain))

    def __repr__(self) -> str:
        return "TrainingData(S_I={}, S_U={}, S_D={})".format(*self.sizes())
