"""Vector calculus on polynomial maps: gradients, Jacobians, Lie derivatives."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.poly.polynomial import Polynomial


def gradient(p: Polynomial) -> Tuple[Polynomial, ...]:
    """Gradient ``(dp/dx_1, ..., dp/dx_n)`` of a scalar polynomial."""
    return p.grad()


def jacobian(field: Sequence[Polynomial]) -> Tuple[Tuple[Polynomial, ...], ...]:
    """Jacobian matrix of a polynomial vector field, row ``i`` = grad of ``f_i``."""
    if not field:
        raise ValueError("empty vector field")
    n = field[0].n_vars
    if any(f.n_vars != n for f in field):
        raise ValueError("vector field components must share variable count")
    return tuple(f.grad() for f in field)


def lie_derivative(p: Polynomial, field: Sequence[Polynomial]) -> Polynomial:
    """Lie derivative ``L_f p = sum_i (dp/dx_i) * f_i`` along a vector field.

    This is the rate of change of ``p`` along trajectories of
    ``xdot = f(x)`` and the key object in barrier condition (iii).
    """
    if len(field) != p.n_vars:
        raise ValueError(
            f"vector field has {len(field)} components, polynomial has "
            f"{p.n_vars} variables"
        )
    result = Polynomial.zero(p.n_vars)
    for i, f_i in enumerate(field):
        if f_i.n_vars != p.n_vars:
            raise ValueError("vector field components must match variable count")
        result = result + p.diff(i) * f_i
    return result
