"""Compiled polynomial evaluation for hot loops.

:class:`CompiledPolynomial` precomputes the exponent matrix of a
polynomial — or, the case it is built for, a whole *vector field* — and
evaluates batches through a single power-product/matmul pipeline.  The
win comes from sharing the monomial work across components: a k-component
field costs one monomial matrix plus one matmul instead of k independent
sparse evaluations (learner field values, simulation right-hand sides,
counterexample search all evaluate fields on large batches).  For a single
polynomial the sparse :meth:`Polynomial.__call__` path is already
competitive; prefer :func:`compile_field` for systems.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.poly.polynomial import Polynomial


class CompiledPolynomial:
    """A polynomial (or stacked system of them) compiled for batch eval.

    All component polynomials share one monomial support union, so a batch
    evaluation costs one power-product tensor plus one matmul.
    """

    def __init__(self, polys: Union[Polynomial, Sequence[Polynomial]]):
        if isinstance(polys, Polynomial):
            polys = [polys]
            self._single = True
        else:
            polys = list(polys)
            self._single = False
        if not polys:
            raise ValueError("nothing to compile")
        n = polys[0].n_vars
        if any(p.n_vars != n for p in polys):
            raise ValueError("all polynomials must share a variable count")
        self.n_vars = n
        self.n_outputs = len(polys)
        support = sorted({a for p in polys for a in p.coeffs})
        if not support:
            support = [(0,) * n]
        self._exponents = np.array(support, dtype=np.int64)  # (t, n)
        self._coeffs = np.zeros((len(support), len(polys)))
        index = {a: i for i, a in enumerate(support)}
        for j, p in enumerate(polys):
            for a, c in p.coeffs.items():
                self._coeffs[index[a], j] = c
        self._max_pow = int(self._exponents.max(initial=0))

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Evaluate on ``(m, n)`` points; returns ``(m,)`` for a single
        polynomial, ``(m, k)`` for a compiled system."""
        pts = np.asarray(points, dtype=float)
        single_pt = pts.ndim == 1
        if single_pt:
            pts = pts[None, :]
        if pts.shape[1] != self.n_vars:
            raise ValueError(f"points must have {self.n_vars} columns")
        m = pts.shape[0]
        # powers[k] = pts ** k, built once
        powers = np.ones((self._max_pow + 1, m, self.n_vars))
        for k in range(1, self._max_pow + 1):
            powers[k] = powers[k - 1] * pts
        # monomial matrix, term-major (t, m) so row updates are contiguous
        t = self._exponents.shape[0]
        mono = np.ones((t, m))
        for i in range(self.n_vars):
            exps = self._exponents[:, i]
            nz = np.flatnonzero(exps)
            if len(nz):
                col = np.ascontiguousarray(powers[:, :, i])
                mono[nz] *= col[exps[nz]]
        out = self._coeffs.T @ mono  # (k, m)
        out = out.T
        if self._single:
            out = out[:, 0]
            return float(out[0]) if single_pt else out
        return out[0] if single_pt else out


def compile_field(field: Sequence[Polynomial]) -> CompiledPolynomial:
    """Compile a polynomial vector field for batched right-hand sides."""
    return CompiledPolynomial(list(field))
