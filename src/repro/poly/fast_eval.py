"""Compiled polynomial evaluation for hot loops.

:class:`CompiledPolynomial` precomputes the exponent matrix of a
polynomial — or, the case it is built for, a whole *vector field* — and
evaluates batches through a single power-product/matmul pipeline.  The
win comes from sharing the monomial work across components: a k-component
field costs one monomial matrix plus one matmul instead of k independent
sparse evaluations (learner field values, simulation right-hand sides,
counterexample search all evaluate fields on large batches).  For a single
polynomial the sparse :meth:`Polynomial.__call__` path is already
competitive; prefer :func:`compile_field` for systems.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.poly.polynomial import Polynomial


class CompiledPolynomial:
    """A polynomial (or stacked system of them) compiled for batch eval.

    All component polynomials share one monomial support union, so a batch
    evaluation costs one power-product tensor plus one matmul.
    """

    def __init__(self, polys: Union[Polynomial, Sequence[Polynomial]]):
        if isinstance(polys, Polynomial):
            polys = [polys]
            self._single = True
        else:
            polys = list(polys)
            self._single = False
        if not polys:
            raise ValueError("nothing to compile")
        n = polys[0].n_vars
        if any(p.n_vars != n for p in polys):
            raise ValueError("all polynomials must share a variable count")
        self.n_vars = n
        self.n_outputs = len(polys)
        support = sorted({a for p in polys for a in p.coeffs})
        if not support:
            support = [(0,) * n]
        self._exponents = np.array(support, dtype=np.int64)  # (t, n)
        self._coeffs = np.zeros((len(support), len(polys)))
        index = {a: i for i, a in enumerate(support)}
        for j, p in enumerate(polys):
            for a, c in p.coeffs.items():
                self._coeffs[index[a], j] = c
        self._max_pow = int(self._exponents.max(initial=0))

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Evaluate on ``(m, n)`` points; returns ``(m,)`` for a single
        polynomial, ``(m, k)`` for a compiled system."""
        pts = np.asarray(points, dtype=float)
        single_pt = pts.ndim == 1
        if single_pt:
            pts = pts[None, :]
        if pts.shape[1] != self.n_vars:
            raise ValueError(f"points must have {self.n_vars} columns")
        m = pts.shape[0]
        # powers[k] = pts ** k, built once
        powers = np.ones((self._max_pow + 1, m, self.n_vars))
        for k in range(1, self._max_pow + 1):
            powers[k] = powers[k - 1] * pts
        # monomial matrix, term-major (t, m) so row updates are contiguous
        t = self._exponents.shape[0]
        mono = np.ones((t, m))
        for i in range(self.n_vars):
            exps = self._exponents[:, i]
            nz = np.flatnonzero(exps)
            if len(nz):
                col = np.ascontiguousarray(powers[:, :, i])
                mono[nz] *= col[exps[nz]]
        out = self._coeffs.T @ mono  # (k, m)
        out = out.T
        if self._single:
            out = out[:, 0]
            return float(out[0]) if single_pt else out
        return out[0] if single_pt else out


#: memoized compilations, LRU-evicted; keyed on the exact coefficient
#: structure so two structurally identical fields share one compilation
_COMPILE_CACHE: "OrderedDict[tuple, CompiledPolynomial]" = OrderedDict()
_COMPILE_CACHE_MAX = 256
_COMPILE_CACHE_ENABLED = [True]


def _field_key(field: Sequence[Polynomial]) -> tuple:
    return tuple(
        (p.n_vars, tuple(sorted(p.coeffs.items()))) for p in field
    )


def set_compile_cache_enabled(enabled: bool) -> bool:
    """Toggle :func:`compile_field` memoization; returns the old value."""
    old = _COMPILE_CACHE_ENABLED[0]
    _COMPILE_CACHE_ENABLED[0] = bool(enabled)
    return old


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()


def compile_cache_info() -> Tuple[int, int]:
    """(current size, capacity) of the compile cache."""
    return len(_COMPILE_CACHE), _COMPILE_CACHE_MAX


def compile_field(field: Sequence[Polynomial]) -> CompiledPolynomial:
    """Compile a polynomial vector field for batched right-hand sides.

    Compilations are memoized on the field's coefficient structure —
    ``Polynomial`` is immutable, so the learner's per-epoch
    ``field_values`` calls reuse one :class:`CompiledPolynomial` per
    CEGIS round instead of recompiling every epoch.  Cache hits/misses
    are counted in the telemetry metrics registry
    (``poly.compile_cache.hits`` / ``.misses``).
    """
    field = list(field)
    if not _COMPILE_CACHE_ENABLED[0]:
        return CompiledPolynomial(field)
    from repro.telemetry import get_telemetry

    key = _field_key(field)
    cached = _COMPILE_CACHE.get(key)
    tel = get_telemetry()
    if cached is not None:
        _COMPILE_CACHE.move_to_end(key)
        if tel.enabled:
            tel.metrics.inc("poly.compile_cache.hits")
        return cached
    if tel.enabled:
        tel.metrics.inc("poly.compile_cache.misses")
    compiled = CompiledPolynomial(field)
    _COMPILE_CACHE[key] = compiled
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.popitem(last=False)
    return compiled
