"""Sparse multivariate polynomials with numpy-vectorized evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.poly.monomials import (
    Exponent,
    add_exponents,
    grlex_key,
    monomial_index_map,
    monomials_upto,
)

Scalar = Union[int, float, np.floating]

#: Coefficients with absolute value below this are dropped on construction.
DROP_TOL = 0.0


class Polynomial:
    """A sparse polynomial in ``R[x_1, ..., x_n]``.

    Internally a mapping from exponent tuples to float coefficients.  All
    arithmetic returns new :class:`Polynomial` objects; instances should be
    treated as immutable.

    Parameters
    ----------
    n_vars:
        Number of variables ``n``.
    coeffs:
        Mapping ``alpha -> c`` for the terms ``c * x**alpha``.  Zero
        coefficients are dropped.
    """

    __slots__ = ("n_vars", "coeffs")

    def __init__(self, n_vars: int, coeffs: Optional[Mapping[Exponent, Scalar]] = None):
        if n_vars < 1:
            raise ValueError("a polynomial needs at least one variable")
        self.n_vars = int(n_vars)
        cleaned: Dict[Exponent, float] = {}
        if coeffs:
            for alpha, c in coeffs.items():
                alpha = tuple(int(a) for a in alpha)
                if len(alpha) != n_vars:
                    raise ValueError(
                        f"exponent {alpha} has {len(alpha)} entries, expected {n_vars}"
                    )
                if any(a < 0 for a in alpha):
                    raise ValueError(f"negative exponent in {alpha}")
                c = float(c)
                if c != 0.0 and abs(c) > DROP_TOL:
                    cleaned[alpha] = cleaned.get(alpha, 0.0) + c
        self.coeffs = {a: c for a, c in cleaned.items() if c != 0.0}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n_vars: int) -> "Polynomial":
        """The zero polynomial."""
        return cls(n_vars, {})

    @classmethod
    def one(cls, n_vars: int) -> "Polynomial":
        """The constant polynomial 1."""
        return cls.constant(n_vars, 1.0)

    @classmethod
    def constant(cls, n_vars: int, value: Scalar) -> "Polynomial":
        """A constant polynomial."""
        return cls(n_vars, {(0,) * n_vars: float(value)})

    @classmethod
    def variable(cls, n_vars: int, index: int) -> "Polynomial":
        """The coordinate polynomial ``x_{index}`` (0-based)."""
        if not 0 <= index < n_vars:
            raise ValueError(f"variable index {index} out of range for n={n_vars}")
        alpha = tuple(1 if i == index else 0 for i in range(n_vars))
        return cls(n_vars, {alpha: 1.0})

    @classmethod
    def variables(cls, n_vars: int) -> Tuple["Polynomial", ...]:
        """All coordinate polynomials ``(x_1, ..., x_n)``."""
        return tuple(cls.variable(n_vars, i) for i in range(n_vars))

    @classmethod
    def monomial(cls, n_vars: int, alpha: Exponent, coeff: Scalar = 1.0) -> "Polynomial":
        """The single-term polynomial ``coeff * x**alpha``."""
        return cls(n_vars, {tuple(alpha): float(coeff)})

    @classmethod
    def from_coeff_vector(
        cls, n_vars: int, degree: int, vector: Sequence[Scalar]
    ) -> "Polynomial":
        """Build from a dense coefficient vector over ``[x]_degree`` (grlex)."""
        basis = monomials_upto(n_vars, degree)
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(basis),):
            raise ValueError(
                f"coefficient vector has shape {vector.shape}, expected ({len(basis)},)"
            )
        return cls(n_vars, dict(zip(basis, vector)))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Total degree (zero polynomial has degree 0 by convention)."""
        if not self.coeffs:
            return 0
        return max(sum(alpha) for alpha in self.coeffs)

    @property
    def is_zero(self) -> bool:
        """True if the polynomial has no terms."""
        return not self.coeffs

    def coeff(self, alpha: Exponent) -> float:
        """Coefficient of ``x**alpha`` (0.0 if absent)."""
        return self.coeffs.get(tuple(alpha), 0.0)

    def support(self) -> Tuple[Exponent, ...]:
        """Exponents with nonzero coefficient, in grlex order."""
        return tuple(sorted(self.coeffs, key=grlex_key))

    def coeff_vector(self, degree: Optional[int] = None) -> np.ndarray:
        """Dense coefficient vector over ``[x]_degree`` in grlex order."""
        if degree is None:
            degree = self.degree
        if degree < self.degree:
            raise ValueError(f"degree {degree} < polynomial degree {self.degree}")
        index = monomial_index_map(self.n_vars, degree)
        vec = np.zeros(len(index))
        for alpha, c in self.coeffs.items():
            vec[index[alpha]] = c
        return vec

    def terms(self) -> Iterable[Tuple[Exponent, float]]:
        """Iterate ``(alpha, coeff)`` pairs in grlex order."""
        for alpha in self.support():
            yield alpha, self.coeffs[alpha]

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Polynomial") -> None:
        if self.n_vars != other.n_vars:
            raise ValueError(
                f"polynomials over different variable counts: {self.n_vars} vs {other.n_vars}"
            )

    def __add__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if isinstance(other, (int, float, np.floating)):
            other = Polynomial.constant(self.n_vars, other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_compatible(other)
        coeffs = dict(self.coeffs)
        for alpha, c in other.coeffs.items():
            coeffs[alpha] = coeffs.get(alpha, 0.0) + c
        return Polynomial(self.n_vars, coeffs)

    def __radd__(self, other: Scalar) -> "Polynomial":
        return self.__add__(other)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.n_vars, {a: -c for a, c in self.coeffs.items()})

    def __sub__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if isinstance(other, (int, float, np.floating)):
            other = Polynomial.constant(self.n_vars, other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.__add__(other.__neg__())

    def __rsub__(self, other: Scalar) -> "Polynomial":
        return (-self).__add__(other)

    def __mul__(self, other: Union["Polynomial", Scalar]) -> "Polynomial":
        if isinstance(other, (int, float, np.floating)):
            return Polynomial(
                self.n_vars, {a: c * float(other) for a, c in self.coeffs.items()}
            )
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_compatible(other)
        coeffs: Dict[Exponent, float] = {}
        for a1, c1 in self.coeffs.items():
            for a2, c2 in other.coeffs.items():
                alpha = add_exponents(a1, a2)
                coeffs[alpha] = coeffs.get(alpha, 0.0) + c1 * c2
        return Polynomial(self.n_vars, coeffs)

    def __rmul__(self, other: Scalar) -> "Polynomial":
        return self.__mul__(other)

    def __truediv__(self, other: Scalar) -> "Polynomial":
        if not isinstance(other, (int, float, np.floating)):
            return NotImplemented
        return self.__mul__(1.0 / float(other))

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("polynomial powers must be nonnegative integers")
        result = Polynomial.one(self.n_vars)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    # ------------------------------------------------------------------
    # calculus and substitution
    # ------------------------------------------------------------------
    def diff(self, index: int) -> "Polynomial":
        """Partial derivative with respect to ``x_{index}`` (0-based)."""
        if not 0 <= index < self.n_vars:
            raise ValueError(f"variable index {index} out of range")
        coeffs: Dict[Exponent, float] = {}
        for alpha, c in self.coeffs.items():
            a = alpha[index]
            if a == 0:
                continue
            beta = tuple(
                ai - 1 if i == index else ai for i, ai in enumerate(alpha)
            )
            coeffs[beta] = coeffs.get(beta, 0.0) + c * a
        return Polynomial(self.n_vars, coeffs)

    def grad(self) -> Tuple["Polynomial", ...]:
        """Gradient vector of partial derivatives."""
        return tuple(self.diff(i) for i in range(self.n_vars))

    def substitute(self, polys: Sequence["Polynomial"]) -> "Polynomial":
        """Compose: substitute ``x_i := polys[i]``.

        All substituted polynomials must share a common variable count, which
        becomes the variable count of the result.
        """
        if len(polys) != self.n_vars:
            raise ValueError(
                f"need {self.n_vars} polynomials to substitute, got {len(polys)}"
            )
        m = polys[0].n_vars
        if any(p.n_vars != m for p in polys):
            raise ValueError("substituted polynomials must share a variable count")
        result = Polynomial.zero(m)
        for alpha, c in self.coeffs.items():
            term = Polynomial.constant(m, c)
            for p, a in zip(polys, alpha):
                if a:
                    term = term * (p ** a)
            result = result + term
        return result

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, points: Union[Sequence[Scalar], np.ndarray]) -> Union[float, np.ndarray]:
        """Evaluate at one point (shape ``(n,)``) or many (shape ``(m, n)``).

        Returns a float for a single point, an ``(m,)`` array otherwise.
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        if pts.ndim != 2 or pts.shape[1] != self.n_vars:
            raise ValueError(
                f"points must have shape (m, {self.n_vars}); got {np.shape(points)}"
            )
        out = np.zeros(pts.shape[0])
        if self.coeffs:
            max_deg = max(max(alpha) for alpha in self.coeffs)
            # pows[k] holds x**k columnwise, built once per call
            pows = np.ones((max_deg + 1,) + pts.shape)
            for k in range(1, max_deg + 1):
                pows[k] = pows[k - 1] * pts
            for alpha, c in self.coeffs.items():
                term = np.full(pts.shape[0], c)
                for i, a in enumerate(alpha):
                    if a:
                        term = term * pows[a][:, i]
                out += term
        return float(out[0]) if single else out

    # ------------------------------------------------------------------
    # comparison / misc
    # ------------------------------------------------------------------
    def is_close(self, other: "Polynomial", tol: float = 1e-9) -> bool:
        """True if all coefficients agree within ``tol``."""
        self._check_compatible(other)
        keys = set(self.coeffs) | set(other.coeffs)
        return all(
            abs(self.coeffs.get(k, 0.0) - other.coeffs.get(k, 0.0)) <= tol
            for k in keys
        )

    def truncate(self, tol: float) -> "Polynomial":
        """Drop terms with ``|coeff| <= tol``."""
        return Polynomial(
            self.n_vars, {a: c for a, c in self.coeffs.items() if abs(c) > tol}
        )

    def scale_variables(self, scales: Sequence[float]) -> "Polynomial":
        """Return ``p(s_1 x_1, ..., s_n x_n)``."""
        if len(scales) != self.n_vars:
            raise ValueError("need one scale per variable")
        coeffs = {}
        for alpha, c in self.coeffs.items():
            factor = 1.0
            for s, a in zip(scales, alpha):
                factor *= float(s) ** a
            coeffs[alpha] = c * factor
        return Polynomial(self.n_vars, coeffs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.n_vars == other.n_vars and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.n_vars, frozenset(self.coeffs.items())))

    def __repr__(self) -> str:
        return f"Polynomial(n_vars={self.n_vars}, '{self}')"

    def __str__(self) -> str:
        if not self.coeffs:
            return "0"
        parts = []
        for alpha in self.support():
            c = self.coeffs[alpha]
            factors = []
            for i, a in enumerate(alpha):
                if a == 1:
                    factors.append(f"x{i + 1}")
                elif a > 1:
                    factors.append(f"x{i + 1}^{a}")
            mono = "*".join(factors)
            if mono:
                coeff_str = "" if c == 1.0 else ("-" if c == -1.0 else f"{c:.6g}*")
                parts.append(f"{coeff_str}{mono}")
            else:
                parts.append(f"{c:.6g}")
        text = " + ".join(parts)
        return text.replace("+ -", "- ")
