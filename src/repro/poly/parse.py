"""Parsing polynomials from human-readable strings.

Accepts the format produced by ``str(Polynomial)`` — terms like
``0.159*x1^2 - 2.267*x1*x2 + 2.703*x1 - 10.541`` — so certificates printed
by the tool (or copied from the paper, e.g. eq. (19)) can be read back.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.poly.monomials import Exponent
from repro.poly.polynomial import Polynomial

_TERM_RE = re.compile(
    r"""
    (?P<sign>[+-])?\s*
    (?P<coeff>\d+\.?\d*(?:[eE][+-]?\d+)?)?\s*\*?\s*
    (?P<monos>(?:x\d+(?:\^\d+)?(?:\s*\*\s*)?)*)
    """,
    re.VERBOSE,
)
_MONO_RE = re.compile(r"x(?P<idx>\d+)(?:\^(?P<pow>\d+))?")


def parse_polynomial(text: str, n_vars: Optional[int] = None) -> Polynomial:
    """Parse a polynomial string over variables ``x1, x2, ...``.

    ``n_vars`` fixes the ambient dimension; inferred from the largest
    variable index otherwise.  Raises ``ValueError`` on malformed input.
    """
    cleaned = text.replace("**", "^").strip()
    if not cleaned:
        raise ValueError("empty polynomial string")
    # tokenize into signed terms
    terms = []
    pos = 0
    while pos < len(cleaned):
        m = _TERM_RE.match(cleaned, pos)
        if m is None or m.end() == pos:
            raise ValueError(f"cannot parse polynomial near {cleaned[pos:pos+15]!r}")
        sign = -1.0 if m.group("sign") == "-" else 1.0
        coeff_text = m.group("coeff")
        monos_text = m.group("monos") or ""
        if coeff_text is None and not monos_text:
            # matched only whitespace/sign: malformed
            raise ValueError(f"dangling term near {cleaned[pos:pos+15]!r}")
        coeff = sign * (float(coeff_text) if coeff_text else 1.0)
        powers: Dict[int, int] = {}
        for mono in _MONO_RE.finditer(monos_text):
            idx = int(mono.group("idx")) - 1
            if idx < 0:
                raise ValueError("variable indices start at x1")
            powers[idx] = powers.get(idx, 0) + int(mono.group("pow") or 1)
        terms.append((coeff, powers))
        pos = m.end()
        while pos < len(cleaned) and cleaned[pos].isspace():
            pos += 1

    max_idx = max((max(p) + 1 for _, p in terms if p), default=1)
    dim = n_vars if n_vars is not None else max_idx
    if max_idx > dim:
        raise ValueError(f"term uses x{max_idx} but n_vars={dim}")
    coeffs: Dict[Exponent, float] = {}
    for coeff, powers in terms:
        alpha = tuple(powers.get(i, 0) for i in range(dim))
        coeffs[alpha] = coeffs.get(alpha, 0.0) + coeff
    return Polynomial(dim, coeffs)
