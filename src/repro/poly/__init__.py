"""Multivariate polynomial algebra.

This package provides the symbolic substrate used throughout the SNBC
pipeline: sparse multivariate polynomials over ``R[x_1, ..., x_n]`` with

* graded-lexicographic monomial bases (:mod:`repro.poly.monomials`),
* arithmetic, vectorized evaluation and calculus
  (:mod:`repro.poly.polynomial`, :mod:`repro.poly.calculus`),
* coefficient-norm and box range bounds used by the numerical SOS
  validation step (:mod:`repro.poly.bounds`).
"""

from repro.poly.monomials import (
    grlex_key,
    monomial_index_map,
    monomials_exact,
    monomials_upto,
    n_monomials_upto,
)
from repro.poly.polynomial import Polynomial
from repro.poly.calculus import gradient, jacobian, lie_derivative
from repro.poly.bounds import abs_bound_on_box, l1_norm, linf_norm
from repro.poly.parse import parse_polynomial

__all__ = [
    "Polynomial",
    "grlex_key",
    "monomials_upto",
    "monomials_exact",
    "monomial_index_map",
    "n_monomials_upto",
    "gradient",
    "jacobian",
    "lie_derivative",
    "abs_bound_on_box",
    "l1_norm",
    "linf_norm",
    "parse_polynomial",
]
