"""Coefficient norms and cheap range bounds for polynomials on boxes.

These bounds back the a-posteriori numerical validation of SOS certificates:
after the SDP solver returns Gram matrices, the coefficient residual of the
polynomial identity is bounded over the (compact, box-shaped) domain and
absorbed into the strictness margin.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.poly.polynomial import Polynomial


def l1_norm(p: Polynomial) -> float:
    """Sum of absolute coefficient values."""
    return float(sum(abs(c) for c in p.coeffs.values()))


def linf_norm(p: Polynomial) -> float:
    """Largest absolute coefficient value."""
    if not p.coeffs:
        return 0.0
    return float(max(abs(c) for c in p.coeffs.values()))


def abs_bound_on_box(
    p: Polynomial, lo: Sequence[float], hi: Sequence[float]
) -> float:
    """Upper bound for ``max |p(x)|`` over the box ``[lo, hi]``.

    Uses the triangle inequality term-by-term:
    ``|p(x)| <= sum_alpha |c_alpha| * prod_i max(|lo_i|, |hi_i|)**alpha_i``.
    Crude but sound, and tight enough for residual absorption because the
    residual coefficients are at solver-tolerance scale.
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if lo.shape != (p.n_vars,) or hi.shape != (p.n_vars,):
        raise ValueError("box bounds must match the polynomial variable count")
    if np.any(lo > hi):
        raise ValueError("box has lo > hi")
    mag = np.maximum(np.abs(lo), np.abs(hi))
    total = 0.0
    for alpha, c in p.coeffs.items():
        term = abs(c)
        for m, a in zip(mag, alpha):
            if a:
                term *= float(m) ** a
        total += term
    return float(total)


def interval_eval(
    p: Polynomial, lo: Sequence[float], hi: Sequence[float]
) -> Tuple[float, float]:
    """Natural interval extension of ``p`` on the box ``[lo, hi]``.

    Returns a (sound, generally over-approximate) enclosure
    ``[low, high]`` of the range of ``p``.
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if lo.shape != (p.n_vars,) or hi.shape != (p.n_vars,):
        raise ValueError("box bounds must match the polynomial variable count")
    if np.any(lo > hi):
        # an empty box has no range; silently continuing would fabricate
        # an unsound enclosure (e.g. even powers still "evaluate")
        raise ValueError("box has lo > hi")
    low, high = 0.0, 0.0
    for alpha, c in p.coeffs.items():
        t_lo, t_hi = 1.0, 1.0
        for i, a in enumerate(alpha):
            if a == 0:
                continue
            # interval power of [lo_i, hi_i]
            if a % 2 == 0 and lo[i] < 0.0 < hi[i]:
                p_lo, p_hi = 0.0, max(lo[i] ** a, hi[i] ** a)
            else:
                cand = sorted((lo[i] ** a, hi[i] ** a))
                p_lo, p_hi = cand[0], cand[1]
            # interval multiply
            products = (t_lo * p_lo, t_lo * p_hi, t_hi * p_lo, t_hi * p_hi)
            t_lo, t_hi = min(products), max(products)
        if c >= 0:
            low += c * t_lo
            high += c * t_hi
        else:
            low += c * t_hi
            high += c * t_lo
    return float(low), float(high)
