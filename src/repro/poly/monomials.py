"""Monomial bookkeeping in graded lexicographic (grlex) order.

A monomial in ``n`` variables is represented by its exponent tuple
``alpha = (a_1, ..., a_n)`` with ``x**alpha = x_1**a_1 * ... * x_n**a_n``.
The paper orders the monomial vector ``[x]_d`` in graded lexicographic
ordering: first by total degree, then lexicographically with ``x_1`` most
significant, i.e. ``[1, x1, x2, ..., xn, x1^2, x1 x2, ...]``.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb
from typing import Dict, Iterator, List, Tuple

Exponent = Tuple[int, ...]


def grlex_key(alpha: Exponent) -> Tuple[int, Tuple[int, ...]]:
    """Sort key realizing graded lexicographic order.

    Total degree first; ties broken lexicographically with larger exponent on
    earlier variables coming first (so ``x1^2`` precedes ``x1*x2``).
    """
    return (sum(alpha), tuple(-a for a in alpha))


def _exponents_exact(n_vars: int, degree: int) -> Iterator[Exponent]:
    """Yield all exponent tuples of ``n_vars`` variables of exact total degree."""
    if n_vars == 1:
        yield (degree,)
        return
    for first in range(degree, -1, -1):
        for rest in _exponents_exact(n_vars - 1, degree - first):
            yield (first,) + rest


@lru_cache(maxsize=None)
def monomials_exact(n_vars: int, degree: int) -> Tuple[Exponent, ...]:
    """All monomials of exact total degree ``degree``, in grlex order."""
    if n_vars < 1:
        raise ValueError("n_vars must be >= 1")
    if degree < 0:
        raise ValueError("degree must be >= 0")
    return tuple(_exponents_exact(n_vars, degree))


@lru_cache(maxsize=None)
def monomials_upto(n_vars: int, degree: int) -> Tuple[Exponent, ...]:
    """The monomial vector ``[x]_d``: all monomials of degree <= d, grlex order.

    Its length is ``binom(n_vars + degree, n_vars)`` (the ``v`` of the paper).
    """
    out: List[Exponent] = []
    for d in range(degree + 1):
        out.extend(monomials_exact(n_vars, d))
    return tuple(out)


def n_monomials_upto(n_vars: int, degree: int) -> int:
    """Dimension ``v = binom(n + d, n)`` of the monomial vector ``[x]_d``."""
    return comb(n_vars + degree, n_vars)


@lru_cache(maxsize=None)
def monomial_index_map(n_vars: int, degree: int) -> Dict[Exponent, int]:
    """Map from exponent tuple to its position in ``monomials_upto``."""
    return {alpha: i for i, alpha in enumerate(monomials_upto(n_vars, degree))}


def add_exponents(a: Exponent, b: Exponent) -> Exponent:
    """Exponent of the product monomial ``x**a * x**b``."""
    return tuple(x + y for x, y in zip(a, b))


def total_degree(alpha: Exponent) -> int:
    """Total degree of a monomial."""
    return sum(alpha)
