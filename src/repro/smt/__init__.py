"""A delta-decision procedure over the reals (dReal substitute).

The paper's baselines (FOSSIL, NNCChecker) verify barrier conditions with an
SMT solver for nonlinear real arithmetic.  This package provides the same
semantics from scratch:

* :mod:`repro.smt.interval` — interval arithmetic, natural interval
  extensions of polynomials, and interval forward propagation through MLPs;
* :mod:`repro.smt.bnp` — a branch-and-prune engine deciding
  ``forall x in S . e(x) >= 0`` up to precision ``delta``: it either proves
  the property, produces a concrete violating point, or returns a
  delta-sized box that cannot be refuted (delta-sat), mirroring dReal.

It exhibits the same exponential-in-dimension behaviour the paper exploits
in Table 1 (FOSSIL/NNCChecker time out for ``n_x >= 5``).
"""

from repro.smt.interval import (
    Interval,
    MeanValueEnclosure,
    mlp_interval_forward,
    poly_enclosure,
)
from repro.smt.bnp import BranchAndPrune, CheckOutcome, CheckStatus
from repro.smt.contractor import contract_box, contract_nonnegative

__all__ = [
    "Interval",
    "poly_enclosure",
    "MeanValueEnclosure",
    "mlp_interval_forward",
    "BranchAndPrune",
    "CheckOutcome",
    "CheckStatus",
    "contract_box",
    "contract_nonnegative",
]
