"""Interval arithmetic and interval extensions of polynomials and MLPs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.layers import Dense
from repro.poly import Polynomial
from repro.poly.bounds import interval_eval


@dataclass(frozen=True)
class Interval:
    """A closed scalar interval ``[lo, hi]`` with outward-sloppy arithmetic.

    Floating-point rounding is not outward-directed here; the branch-and-
    prune engine compensates with its ``delta`` margin, matching dReal's
    delta-decision semantics rather than validated arithmetic.
    """

    lo: float
    hi: float

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def mid(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Interval":
        if isinstance(other, Interval):
            return other
        return Interval(float(other), float(other))

    def __add__(self, other) -> "Interval":
        other = self._coerce(other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other) -> "Interval":
        return self.__add__(self._coerce(other).__neg__())

    def __rsub__(self, other) -> "Interval":
        return self.__neg__().__add__(other)

    def __mul__(self, other) -> "Interval":
        other = self._coerce(other)
        cands = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(cands), max(cands))

    __rmul__ = __mul__

    def __pow__(self, k: int) -> "Interval":
        if not isinstance(k, int) or k < 0:
            raise ValueError("interval powers must be nonnegative integers")
        if k == 0:
            return Interval(1.0, 1.0)
        if k % 2 == 0 and self.lo < 0.0 < self.hi:
            return Interval(0.0, max(self.lo ** k, self.hi ** k))
        cands = sorted((self.lo ** k, self.hi ** k))
        return Interval(cands[0], cands[1])

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"[{self.lo:.6g}, {self.hi:.6g}]"


def poly_enclosure(p: Polynomial, lo: np.ndarray, hi: np.ndarray) -> Interval:
    """Natural interval extension of a polynomial over a box."""
    low, high = interval_eval(p, lo, hi)
    return Interval(low, high)


class MeanValueEnclosure:
    """Mean-value form enclosure ``f(m) + grad f([x]) . ([x] - m)``.

    Quadratically tighter than the natural extension as boxes shrink (the
    regime branch-and-prune spends most of its time in), at the cost of
    ``n`` gradient enclosures per box.  The returned enclosure is the
    intersection with the natural extension, so it is never worse.
    Precomputes the gradient polynomials once; use as a drop-in
    ``enclosure`` callback for :class:`repro.smt.bnp.BranchAndPrune`.
    """

    def __init__(self, p: Polynomial):
        self.poly = p
        self.grads = p.grad()

    def __call__(self, lo: np.ndarray, hi: np.ndarray) -> Interval:
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        mid = 0.5 * (lo + hi)
        total = Interval(float(self.poly(mid)), float(self.poly(mid)))
        for i, g in enumerate(self.grads):
            if g.is_zero:
                continue
            radius = 0.5 * (hi[i] - lo[i])
            if radius == 0.0:
                continue
            total = total + poly_enclosure(g, lo, hi) * Interval(-radius, radius)
        natural = poly_enclosure(self.poly, lo, hi)
        # both are sound; keep the tighter intersection
        return Interval(
            max(total.lo, natural.lo), min(total.hi, natural.hi)
        ) if max(total.lo, natural.lo) <= min(total.hi, natural.hi) else natural


def mlp_interval_forward(
    net: MLP, lo: np.ndarray, hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sound output enclosure of an MLP over an input box.

    Affine layers use the center-radius form
    ``c' = c W + b, r' = r |W|``; monotone activations (tanh, sigmoid,
    (leaky) ReLU) map bounds directly.
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    cur_lo, cur_hi = lo.copy(), hi.copy()
    for module in net.net:
        if isinstance(module, Dense):
            c = 0.5 * (cur_lo + cur_hi)
            r = 0.5 * (cur_hi - cur_lo)
            c2 = c @ module.W.data
            if module.b is not None:
                c2 = c2 + module.b.data
            r2 = r @ np.abs(module.W.data)
            cur_lo, cur_hi = c2 - r2, c2 + r2
        else:
            name = type(module).__name__
            if name == "Tanh":
                cur_lo, cur_hi = np.tanh(cur_lo), np.tanh(cur_hi)
            elif name == "ReLU":
                cur_lo, cur_hi = np.maximum(cur_lo, 0.0), np.maximum(cur_hi, 0.0)
            elif name == "LeakyReLU":
                s = module.negative_slope
                cur_lo = np.where(cur_lo > 0, cur_lo, s * cur_lo)
                cur_hi = np.where(cur_hi > 0, cur_hi, s * cur_hi)
            elif name == "Sigmoid":
                cur_lo = 1.0 / (1.0 + np.exp(-cur_lo))
                cur_hi = 1.0 / (1.0 + np.exp(-cur_hi))
            else:  # pragma: no cover - defensive
                raise TypeError(f"no interval rule for module {name}")
    if net.output_scale is not None:
        s = float(net.output_scale)
        cur_lo, cur_hi = s * np.tanh(cur_lo), s * np.tanh(cur_hi)
    return cur_lo, cur_hi
