"""Interval constraint contraction for polynomial inequalities.

A forward-backward (HC4-style) contractor specialized to the flat
monomial-sum structure of :class:`~repro.poly.Polynomial`: for a
constraint ``p(x) >= 0`` on a box,

1. *forward*: enclose every monomial term and their sum;
2. *backward*: each term must exceed ``-(sum of the other terms' upper
   bounds)``; back-project that requirement through the term's coefficient
   and co-factors onto one variable power at a time, shrinking the box.

Contraction never removes solutions (every step is an interval-arithmetic
consequence of the constraint), so it is safe to apply inside
branch-and-prune before splitting — often shrinking boxes for free where
pure bisection would pay exponentially.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.poly import Polynomial
from repro.smt.interval import Interval


def _power_interval(lo: float, hi: float, a: int) -> Interval:
    return Interval(lo, hi) ** a


def _root_interval(target: Interval, a: int) -> Optional[Interval]:
    """Solve ``x^a in target`` for x (outer enclosure); None if empty."""
    if a % 2 == 1:
        root = lambda v: np.sign(v) * abs(v) ** (1.0 / a)
        return Interval(float(root(target.lo)), float(root(target.hi)))
    # even power: x^a >= 0
    hi = target.hi
    if hi < 0:
        return None
    bound = float(hi ** (1.0 / a))
    return Interval(-bound, bound)


def _divide(target: Interval, divisor: Interval) -> Optional[Interval]:
    """Outer enclosure of ``target / divisor``; None when uninformative
    (divisor spans 0)."""
    if divisor.lo <= 0.0 <= divisor.hi:
        return None
    with np.errstate(over="ignore", invalid="ignore"):
        candidates = (
            target.lo / divisor.lo,
            target.lo / divisor.hi,
            target.hi / divisor.lo,
            target.hi / divisor.hi,
        )
    # A subnormal divisor can overflow the quotient to inf, in which case
    # the min/max below would fabricate a *tighter* (unsound) bound on the
    # other side.  Treat any non-finite quotient as uninformative.
    if not all(math.isfinite(q) for q in candidates):
        return None
    return Interval(min(candidates), max(candidates))


def contract_nonnegative(
    p: Polynomial,
    lo: np.ndarray,
    hi: np.ndarray,
    sweeps: int = 2,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Contract a box against ``p(x) >= 0``.

    Returns the (possibly smaller) box, or ``None`` when the constraint is
    provably violated everywhere in the box.
    """
    lo = np.array(lo, dtype=float)
    hi = np.array(hi, dtype=float)
    if np.any(lo > hi):
        return None  # empty box: no points, nothing satisfies the constraint
    terms = list(p.coeffs.items())
    if not terms:
        return lo, hi  # the zero polynomial satisfies >= 0

    for _ in range(sweeps):
        # forward: per-variable power intervals for every term
        var_pows: List[dict] = []
        term_ints: List[Interval] = []
        for alpha, c in terms:
            pows = {}
            acc = Interval(c, c)
            for i, a in enumerate(alpha):
                if a:
                    pw = _power_interval(lo[i], hi[i], a)
                    pows[i] = pw
                    acc = acc * pw
            var_pows.append(pows)
            term_ints.append(acc)
        total = Interval(0.0, 0.0)
        for t in term_ints:
            total = total + t
        if total.hi < 0.0:
            return None  # empty: p < 0 on the whole box
        if total.lo >= 0.0:
            return lo, hi  # constraint inactive; nothing to gain

        changed = False
        for k, (alpha, c) in enumerate(terms):
            rest_hi = sum(t.hi for j, t in enumerate(term_ints) if j != k)
            required = Interval(-rest_hi, term_ints[k].hi)
            if required.lo > required.hi:
                return None
            for i, a in enumerate(alpha):
                if a == 0:
                    continue
                # co-factor of x_i^a inside term k
                cof = Interval(c, c)
                for j, pw in var_pows[k].items():
                    if j != i:
                        cof = cof * pw
                pow_target = _divide(required, cof)
                if pow_target is None:
                    continue
                x_range = _root_interval(pow_target, a)
                if x_range is None:
                    return None
                new_lo = max(lo[i], x_range.lo)
                new_hi = min(hi[i], x_range.hi)
                if new_lo > new_hi:
                    return None
                if new_lo > lo[i] + 1e-15 or new_hi < hi[i] - 1e-15:
                    lo[i], hi[i] = new_lo, new_hi
                    changed = True
        if not changed:
            break
    return lo, hi


def contract_box(
    constraints: Sequence[Polynomial],
    lo: np.ndarray,
    hi: np.ndarray,
    sweeps: int = 2,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Apply :func:`contract_nonnegative` for every ``g_i >= 0`` in turn.

    Returns the contracted box or ``None`` when some constraint empties it
    (the box is disjoint from the semialgebraic set).
    """
    cur = (np.array(lo, dtype=float), np.array(hi, dtype=float))
    if np.any(cur[0] > cur[1]):
        return None  # empty box is disjoint from any set
    for _ in range(sweeps):
        before = (cur[0].copy(), cur[1].copy())
        for g in constraints:
            out = contract_nonnegative(g, cur[0], cur[1], sweeps=1)
            if out is None:
                return None
            cur = out
        if np.allclose(before[0], cur[0]) and np.allclose(before[1], cur[1]):
            break
    return cur
