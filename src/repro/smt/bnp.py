"""Branch-and-prune delta-decision engine.

Decides queries of the form

    forall x in (Box intersect S) .  e(x) >= 0

where ``S`` is cut out by constraint enclosures.  The engine maintains a
work list of sub-boxes and, per box:

1. prunes boxes provably disjoint from ``S``;
2. discharges boxes where the enclosure of ``e`` is already nonnegative;
3. reports a concrete violation when the enclosure is negative and a
   violating point inside ``S`` can be sampled;
4. splits along the widest dimension, until boxes shrink below ``delta``
   (then reports delta-sat with the midpoint, exactly dReal's weak answer)
   or the box budget is exhausted (unknown).

The work list is explored worst-first (most negative lower bound), which
finds real counterexamples quickly — that behaviour feeds the FOSSIL-style
CEGIS baseline.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.smt.interval import Interval

EnclosureFn = Callable[[np.ndarray, np.ndarray], Interval]
PointFn = Callable[[np.ndarray], np.ndarray]


class CheckStatus(enum.Enum):
    """Result of a forall-check."""

    PROVED = "proved"
    VIOLATED = "violated"
    DELTA_SAT = "delta_sat"
    UNKNOWN = "unknown"


@dataclass
class CheckOutcome:
    """Outcome of :meth:`BranchAndPrune.check_forall`."""

    status: CheckStatus
    witness: Optional[np.ndarray] = None
    witness_value: Optional[float] = None
    boxes_processed: int = 0
    elapsed_seconds: float = 0.0
    message: str = ""

    @property
    def proved(self) -> bool:
        return self.status is CheckStatus.PROVED


class BranchAndPrune:
    """Configurable branch-and-prune engine.

    Parameters
    ----------
    delta:
        Minimum box width; below it the query is answered delta-sat.
    max_boxes:
        Budget on processed boxes before answering unknown — this is the
        knob that makes high-dimensional problems time out like dReal does.
    time_limit:
        Optional wall-clock budget in seconds.
    n_samples:
        Concrete points sampled per box when hunting for a true violation.
    """

    def __init__(
        self,
        delta: float = 1e-3,
        max_boxes: int = 200_000,
        time_limit: Optional[float] = None,
        n_samples: int = 8,
        rng: Optional[np.random.Generator] = None,
        contractor: Optional[Callable] = None,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.max_boxes = max_boxes
        self.time_limit = time_limit
        self.n_samples = n_samples
        self.rng = rng or np.random.default_rng(0)
        #: optional box contractor ``(lo, hi) -> (lo', hi') | None`` applied
        #: before each box is processed (None = box empty w.r.t. the region);
        #: see :func:`repro.smt.contractor.contract_box`
        self.contractor = contractor

    # ------------------------------------------------------------------
    def check_forall(
        self,
        enclosure: EnclosureFn,
        point_eval: PointFn,
        lo: np.ndarray,
        hi: np.ndarray,
        region_enclosures: Sequence[EnclosureFn] = (),
        region_point: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> CheckOutcome:
        """Check ``forall x in box cap S: e(x) >= 0``.

        ``enclosure(lo, hi)`` returns an interval containing
        ``{e(x) : x in [lo, hi]}``; ``point_eval(points)`` evaluates ``e`` on
        an ``(m, n)`` batch.  ``region_enclosures`` are enclosures of the set
        constraints ``g_i >= 0`` defining ``S``; ``region_point`` is a
        boolean membership test for sampled points.
        """
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        start = time.perf_counter()
        counter = itertools.count()
        heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
        heapq.heappush(heap, (0.0, next(counter), lo, hi))
        processed = 0
        delta_witness: Optional[np.ndarray] = None
        delta_value: Optional[float] = None

        while heap:
            if processed >= self.max_boxes:
                return CheckOutcome(
                    status=CheckStatus.UNKNOWN,
                    boxes_processed=processed,
                    elapsed_seconds=time.perf_counter() - start,
                    message="box budget exhausted",
                )
            if self.time_limit is not None and (
                time.perf_counter() - start > self.time_limit
            ):
                return CheckOutcome(
                    status=CheckStatus.UNKNOWN,
                    boxes_processed=processed,
                    elapsed_seconds=time.perf_counter() - start,
                    message="time limit exhausted",
                )
            _, _, blo, bhi = heapq.heappop(heap)
            processed += 1

            if self.contractor is not None:
                contracted = self.contractor(blo, bhi)
                if contracted is None:
                    continue  # provably disjoint from the region
                blo, bhi = contracted

            # prune: box disjoint from the region?
            disjoint = False
            for g in region_enclosures:
                if g(blo, bhi).hi < 0.0:
                    disjoint = True
                    break
            if disjoint:
                continue

            enc = enclosure(blo, bhi)
            if enc.lo >= 0.0:
                continue  # property certain on this box

            # hunt for a concrete violation
            pts = self.rng.uniform(blo, bhi, size=(self.n_samples, lo.shape[0]))
            pts = np.vstack([pts, 0.5 * (blo + bhi)])
            if region_point is not None:
                inside = region_point(pts)
                pts = pts[np.asarray(inside, dtype=bool)]
            if len(pts):
                vals = np.asarray(point_eval(pts), dtype=float)
                bad = np.argmin(vals)
                if vals[bad] < 0.0:
                    return CheckOutcome(
                        status=CheckStatus.VIOLATED,
                        witness=pts[bad],
                        witness_value=float(vals[bad]),
                        boxes_processed=processed,
                        elapsed_seconds=time.perf_counter() - start,
                    )

            width = float(np.max(bhi - blo))
            if width < self.delta:
                # cannot refute at this precision: remember the weak witness
                mid = 0.5 * (blo + bhi)
                if delta_witness is None or enc.lo < (delta_value or 0.0):
                    delta_witness = mid
                    delta_value = enc.lo
                continue

            axis = int(np.argmax(bhi - blo))
            mid = 0.5 * (blo[axis] + bhi[axis])
            left_hi = bhi.copy()
            left_hi[axis] = mid
            right_lo = blo.copy()
            right_lo[axis] = mid
            for clo, chi in ((blo, left_hi), (right_lo, bhi)):
                child_enc = enclosure(clo, chi)
                if child_enc.lo >= 0.0:
                    continue
                heapq.heappush(heap, (child_enc.lo, next(counter), clo, chi))

        elapsed = time.perf_counter() - start
        if delta_witness is not None:
            return CheckOutcome(
                status=CheckStatus.DELTA_SAT,
                witness=delta_witness,
                witness_value=delta_value,
                boxes_processed=processed,
                elapsed_seconds=elapsed,
                message=f"possible violation at delta={self.delta}",
            )
        return CheckOutcome(
            status=CheckStatus.PROVED,
            boxes_processed=processed,
            elapsed_seconds=elapsed,
        )
