"""SNBC: neural barrier certificate synthesis for NN-controlled systems.

A from-scratch reproduction of Zhao et al., "Neural Barrier Certificates
Synthesis of NN-Controlled Continuous Systems via Counterexample-Guided
Learning" (DAC 2024).  See README.md for a tour and DESIGN.md for the
system inventory.

The one-call entry point:

>>> from repro import synthesize_barrier                    # doctest: +SKIP
>>> result = synthesize_barrier(problem, controller=k)      # doctest: +SKIP
>>> result.success, result.barrier                          # doctest: +SKIP
"""

from typing import Optional

__version__ = "1.0.0"


def synthesize_barrier(
    problem,
    controller=None,
    max_iterations: int = 10,
    n_samples: int = 500,
    seed: int = 0,
    b_hidden=(10,),
    lambda_hidden=(5,),
    **snbc_kwargs,
):
    """Synthesize a barrier certificate for a CCDS with sensible defaults.

    A thin convenience wrapper over :class:`repro.cegis.SNBC`; use the
    class directly for full control over learner/verifier/counterexample
    configuration.

    Parameters
    ----------
    problem:
        A :class:`repro.dynamics.CCDS` safety instance.
    controller:
        The NN controller for controlled plants (omit for autonomous ones).
    b_hidden / lambda_hidden:
        Hidden widths of the barrier and multiplier networks
        (``lambda_hidden=None`` selects the constant multiplier).

    Returns
    -------
    repro.cegis.SNBCResult
    """
    from repro.cegis import SNBC, SNBCConfig
    from repro.learner import LearnerConfig

    return SNBC(
        problem,
        controller=controller,
        learner_config=LearnerConfig(
            b_hidden=tuple(b_hidden),
            lambda_hidden=None if lambda_hidden is None else tuple(lambda_hidden),
            seed=seed,
        ),
        config=SNBCConfig(
            max_iterations=max_iterations,
            n_samples=n_samples,
            seed=seed,
            **snbc_kwargs,
        ),
    ).run()
