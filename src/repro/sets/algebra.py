"""Region algebra: unions and differences of semialgebraic pieces.

The paper's regions (Theta, Psi, Xi) are compact semialgebraic sets,
but a *basic* set ``{x : g_i(x) >= 0}`` cannot express the workloads
that matter in practice — a workspace with obstacles carved out, or a
safe set made of several rooms.  This module closes that gap with two
composite region types plus a serializable :class:`RegionSpec`:

* :class:`UnionSet` — a finite union of pieces, with exact membership
  and volume-aware stratified sampling (per-piece proportional
  allocation with first-container ownership, replacing naive
  rejection);
* :class:`DifferenceSet` — a base region minus obstacle regions
  ("box minus obstacles"), with bounded rejection sampling off the
  base's sampler;
* :class:`RegionSpec` — a frozen, canonically-serializable description
  of a composed region, so region geometry hashes stably into service
  request manifests (content-addressed certificate cache).

Soundness contract
------------------

Composite sets are **not** basic: they have no single conjunction of
polynomial inequalities, so their ``.constraints`` raises a
:class:`RegionAlgebraError` — any consumer that would silently treat a
union as an intersection fails loudly instead.  The sound route is
:meth:`SemialgebraicSet.decompose`: every region yields a finite tuple
of *basic* cells whose union **covers** the region (cells are closed,
so a difference's cells include the obstacle boundaries — a
superset, hence verifying a nonnegativity condition on every cell is
at least as strong as verifying it on the region).  Downstream:

* the SOS verifier proves one Putinar certificate per cell and
  conjoins them in the ``ConditionReport``/``CertificateBundle``;
* the interval/SMT verifier branches its contractor over cells;
* the exact checker re-proves each per-cell certificate over Q
  unchanged (a certificate carries its own constraints and box).

Cell construction for a difference intersects the base's cells with
closed complement pieces of each obstacle: a :class:`Ball` (or any
single-constraint obstacle) contributes one negated constraint, while
a :class:`Box` obstacle splits into its ``2n`` closed face half-spaces
``{x_i <= lo_i}`` / ``{x_i >= hi_i}`` (cross product over obstacles).
Cells clipped to an empty or face-degenerate box are pruned: such a
cell lies inside an obstacle facet, and any of its points adjacent to
the true difference is covered by a neighboring kept cell.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.poly import Polynomial
from repro.sets.semialgebraic import Ball, Box, SemialgebraicSet


class RegionAlgebraError(TypeError):
    """A composite region was used where only a basic set is sound.

    Deliberately a ``TypeError``: reaching for ``.constraints`` on a
    union/difference is an API misuse (the caller must go through
    ``decompose()``), not an operational failure.
    """


def _negate(g: Polynomial) -> Polynomial:
    return Polynomial.constant(g.n_vars, 0.0) - g


def _as_points(points: np.ndarray) -> Tuple[np.ndarray, bool]:
    pts = np.asarray(points, dtype=float)
    single = pts.ndim == 1
    if single:
        pts = pts[None, :]
    return pts, single


def _allocate(n_samples: int, weights: np.ndarray) -> np.ndarray:
    """Largest-remainder apportionment of ``n_samples`` by ``weights``."""
    weights = np.asarray(weights, dtype=float)
    if not np.all(np.isfinite(weights)) or float(weights.sum()) <= 0.0:
        weights = np.ones_like(weights)
    quota = n_samples * weights / weights.sum()
    counts = np.floor(quota).astype(int)
    short = n_samples - int(counts.sum())
    if short > 0:
        order = np.argsort(-(quota - counts), kind="stable")
        counts[order[:short]] += 1
    return counts


def _sampling_error(region: str, requested: int, attempts: int, got: int):
    from repro.resilience.errors import SamplingError

    return SamplingError(
        f"rejection sampling failed for set {region or '<anonymous>'}: "
        f"accepted {got}/{requested} after {attempts} attempts",
        region=region or "<anonymous>",
        requested=int(requested),
        attempts=int(attempts),
    )


def _deep_interior_mask(
    obstacle: SemialgebraicSet, pts: np.ndarray, depth: float
) -> np.ndarray:
    """Points strictly inside ``obstacle`` by metric depth ``> depth``.

    Used to thin inclusion meshes: dropping only deep-interior points
    keeps the remaining mesh a valid cover (at the effective spacing)
    of the closed difference region.  Generic obstacles never drop
    points — conservative, hence sound.
    """
    if isinstance(obstacle, Box):
        return np.all(
            (pts > obstacle.lo + depth) & (pts < obstacle.hi - depth), axis=1
        )
    if isinstance(obstacle, Ball):
        inner = max(obstacle.radius - depth, 0.0)
        return np.sum((pts - obstacle.center) ** 2, axis=1) < inner ** 2
    return np.zeros(pts.shape[0], dtype=bool)


@dataclass
class _ComplementOption:
    """One closed piece of an obstacle's complement within a cell box."""

    constraints: Tuple[Polynomial, ...]
    lo_clip: np.ndarray
    hi_clip: np.ndarray


def _complement_options(
    obstacle: SemialgebraicSet, lo: np.ndarray, hi: np.ndarray
) -> Optional[List[_ComplementOption]]:
    """Closed complement pieces of ``obstacle`` relative to box (lo, hi).

    Returns ``None`` when the obstacle's interior misses the box
    entirely (no constraint needed).  Box obstacles split into their
    2n face half-spaces with clipped boxes; single-constraint
    obstacles (balls, generic ``{g >= 0}``) contribute one negated
    constraint.
    """
    n = obstacle.n_vars
    if isinstance(obstacle, Box):
        if np.any(obstacle.hi <= lo) or np.any(obstacle.lo >= hi):
            return None
        options: List[_ComplementOption] = []
        for i in range(n):
            xi = Polynomial.variable(n, i)
            below = Polynomial.constant(n, float(obstacle.lo[i])) - xi
            hi_clip = hi.copy()
            hi_clip[i] = min(hi_clip[i], float(obstacle.lo[i]))
            options.append(_ComplementOption((below,), lo.copy(), hi_clip))
            above = xi - Polynomial.constant(n, float(obstacle.hi[i]))
            lo_clip = lo.copy()
            lo_clip[i] = max(lo_clip[i], float(obstacle.hi[i]))
            options.append(_ComplementOption((above,), lo_clip, hi.copy()))
        return options
    if isinstance(obstacle, Ball):
        nearest = np.clip(obstacle.center, lo, hi)
        if np.sum((nearest - obstacle.center) ** 2) >= obstacle.radius ** 2:
            return None
        g = obstacle.constraints[0]
        return [_ComplementOption((_negate(g),), lo.copy(), hi.copy())]
    if len(obstacle.constraints) == 1:
        g = obstacle.constraints[0]
        return [_ComplementOption((_negate(g),), lo.copy(), hi.copy())]
    raise RegionAlgebraError(
        f"obstacle {obstacle.name or '<anonymous>'} has "
        f"{len(obstacle.constraints)} constraints; only Box, Ball, or "
        "single-constraint obstacles have a basic-cell complement "
        "decomposition"
    )


class UnionSet(SemialgebraicSet):
    """A finite union of semialgebraic pieces.

    Membership is exact (a point belongs iff any piece contains it).
    Sampling is stratified: the request is apportioned across pieces
    proportionally to :meth:`volume_estimate`, and a draw from piece
    ``i`` is *owned* by that piece only if no earlier piece contains it
    — overlap mass is never double-counted.
    """

    def __init__(self, pieces: Sequence[SemialgebraicSet], name: str = ""):
        pieces = tuple(pieces)
        if not pieces:
            raise ValueError("UnionSet needs at least one piece")
        n = pieces[0].n_vars
        for piece in pieces:
            if piece.n_vars != n:
                raise ValueError("union pieces must share the ambient dimension")
            if piece.bounding_box is None:
                raise ValueError(
                    f"union piece {piece.name or '<anonymous>'} needs a "
                    "bounding_box"
                )
        self.n_vars = n
        self.pieces: Tuple[SemialgebraicSet, ...] = pieces
        self.name = name
        lo = np.min(np.stack([p.bounding_box[0] for p in pieces]), axis=0)
        hi = np.max(np.stack([p.bounding_box[1] for p in pieces]), axis=0)
        self.bounding_box = (lo, hi)

    @property
    def constraints(self) -> Tuple[Polynomial, ...]:
        raise RegionAlgebraError(
            f"UnionSet {self.name or '<anonymous>'} is not a basic "
            "semialgebraic set; use decompose() and verify per cell"
        )

    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        pts, single = _as_points(points)
        mask = np.zeros(pts.shape[0], dtype=bool)
        for piece in self.pieces:
            mask |= np.asarray(piece.contains(pts, tol=tol))
        return bool(mask[0]) if single else mask

    def violation(self, points: np.ndarray) -> np.ndarray:
        pts, single = _as_points(points)
        worst = np.full(pts.shape[0], np.inf)
        for piece in self.pieces:
            worst = np.minimum(worst, np.asarray(piece.violation(pts)))
        return float(worst[0]) if single else worst

    def sample(
        self,
        n_samples: int,
        rng: Optional[np.random.Generator] = None,
        max_attempts: Optional[int] = None,
    ) -> np.ndarray:
        if n_samples <= 0:
            return np.empty((0, self.n_vars))
        rng = rng or np.random.default_rng()
        weights = np.array([p.volume_estimate() for p in self.pieces])
        counts = _allocate(int(n_samples), weights)
        budget = (
            int(max_attempts)
            if max_attempts is not None
            else 1000 * max(1, int(n_samples))
        )
        attempts = 0
        chunks: List[np.ndarray] = []
        for i, (piece, want) in enumerate(zip(self.pieces, counts)):
            if want <= 0:
                continue
            got: List[np.ndarray] = []
            have = 0
            while have < want:
                batch = piece.sample(max(64, int(want)), rng)
                attempts += len(batch)
                if i > 0 and len(batch):
                    owned = np.ones(len(batch), dtype=bool)
                    for earlier in self.pieces[:i]:
                        owned &= ~np.asarray(earlier.contains(batch))
                    batch = batch[owned]
                if len(batch):
                    got.append(batch)
                    have += len(batch)
                if attempts >= budget and have < want:
                    raise _sampling_error(
                        self.name, int(n_samples), attempts,
                        sum(len(c) for c in chunks) + have,
                    )
            chunks.append(np.concatenate(got)[:want])
        return np.concatenate(chunks)

    def decompose(self) -> Tuple[SemialgebraicSet, ...]:
        cells: List[SemialgebraicSet] = []
        for piece in self.pieces:
            cells.extend(piece.decompose())
        return tuple(cells)

    def volume_estimate(self) -> float:
        return float(sum(p.volume_estimate() for p in self.pieces))

    def mesh(self, spacing: float, max_points: int = 200_000) -> np.ndarray:
        per_piece = max(1, max_points // len(self.pieces))
        return np.concatenate(
            [p.mesh(spacing, per_piece) for p in self.pieces]
        )

    def effective_spacing(
        self, spacing: float, max_points: int = 200_000
    ) -> float:
        per_piece = max(1, max_points // len(self.pieces))
        return max(
            p.effective_spacing(spacing, per_piece) for p in self.pieces
        )

    def __repr__(self) -> str:
        label = self.name or "UnionSet"
        return f"{label}(pieces={len(self.pieces)}, n_vars={self.n_vars})"


class DifferenceSet(SemialgebraicSet):
    """A base region minus finitely many obstacle regions.

    Membership follows the de Morgan reading: a point belongs iff it is
    in the base and in **no** (closed) obstacle.  The cell
    decomposition covers the closure of that set — see the module
    docstring's soundness contract.
    """

    def __init__(
        self,
        base: SemialgebraicSet,
        obstacles: Sequence[SemialgebraicSet],
        name: str = "",
    ):
        if base.bounding_box is None:
            raise ValueError(
                f"difference base {base.name or '<anonymous>'} needs a "
                "bounding_box"
            )
        obstacles = tuple(obstacles)
        for o in obstacles:
            if o.n_vars != base.n_vars:
                raise ValueError(
                    "obstacle dimension mismatch with difference base"
                )
            if not isinstance(o, (Box, Ball)) and len(o.constraints) != 1:
                raise RegionAlgebraError(
                    f"obstacle {o.name or '<anonymous>'} must be a Box, a "
                    "Ball, or a single-constraint set (its complement must "
                    "decompose into basic cells)"
                )
        self.n_vars = base.n_vars
        self.base = base
        self.obstacles: Tuple[SemialgebraicSet, ...] = obstacles
        self.name = name
        lo, hi = base.bounding_box
        self.bounding_box = (lo.copy(), hi.copy())

    @property
    def constraints(self) -> Tuple[Polynomial, ...]:
        raise RegionAlgebraError(
            f"DifferenceSet {self.name or '<anonymous>'} is not a basic "
            "semialgebraic set; use decompose() and verify per cell"
        )

    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        pts, single = _as_points(points)
        mask = np.asarray(self.base.contains(pts, tol=tol))
        for o in self.obstacles:
            mask &= ~np.asarray(o.contains(pts, tol=-tol))
        return bool(mask[0]) if single else mask

    def violation(self, points: np.ndarray) -> np.ndarray:
        pts, single = _as_points(points)
        worst = np.asarray(self.base.violation(pts), dtype=float)
        for o in self.obstacles:
            depth = np.full(pts.shape[0], np.inf)
            for g in o.constraints:
                depth = np.minimum(depth, np.asarray(g(pts)))
            worst = np.maximum(worst, np.maximum(depth, 0.0))
        return float(worst[0]) if single else worst

    def sample(
        self,
        n_samples: int,
        rng: Optional[np.random.Generator] = None,
        max_attempts: Optional[int] = None,
    ) -> np.ndarray:
        if n_samples <= 0:
            return np.empty((0, self.n_vars))
        rng = rng or np.random.default_rng()
        budget = (
            int(max_attempts)
            if max_attempts is not None
            else 1000 * max(1, int(n_samples))
        )
        out: List[np.ndarray] = []
        have = 0
        attempts = 0
        while have < n_samples:
            batch = self.base.sample(max(64, int(n_samples)), rng)
            attempts += len(batch)
            keep = np.ones(len(batch), dtype=bool)
            for o in self.obstacles:
                keep &= ~np.asarray(o.contains(batch))
            batch = batch[keep]
            if len(batch):
                out.append(batch)
                have += len(batch)
            if attempts >= budget and have < n_samples:
                raise _sampling_error(self.name, int(n_samples), attempts, have)
        return np.concatenate(out)[:n_samples]

    def decompose(self) -> Tuple[SemialgebraicSet, ...]:
        label = self.name or "diff"
        cells: List[SemialgebraicSet] = []
        for bcell in self.base.decompose():
            blo, bhi = bcell.bounding_box
            option_sets = []
            for o in self.obstacles:
                opts = _complement_options(o, blo, bhi)
                if opts is not None:
                    option_sets.append(opts)
            for combo in itertools.product(*option_sets):
                lo = blo.copy()
                hi = bhi.copy()
                extra: List[Polynomial] = []
                for opt in combo:
                    extra.extend(opt.constraints)
                    lo = np.maximum(lo, opt.lo_clip)
                    hi = np.minimum(hi, opt.hi_clip)
                if np.any(lo > hi):
                    continue
                # a cell clipped flat in a coordinate where the base cell
                # had width lies inside an obstacle facet; its difference-
                # adjacent points belong to a neighboring kept cell
                if np.any((hi - lo <= 0) & (bhi - blo > 0)):
                    continue
                cells.append(
                    SemialgebraicSet(
                        self.n_vars,
                        tuple(bcell.constraints) + tuple(extra),
                        bounding_box=(lo, hi),
                        name=f"{label}[{len(cells)}]",
                    )
                )
        return tuple(cells)

    def volume_estimate(self) -> float:
        base_vol = self.base.volume_estimate()
        lo, hi = self.bounding_box
        carved = 0.0
        for o in self.obstacles:
            olo, ohi = o.bounding_box
            clipped = np.maximum(
                np.minimum(ohi, hi) - np.maximum(olo, lo), 0.0
            )
            carved += float(np.prod(clipped))
        return max(base_vol - carved, 0.01 * base_vol)

    def mesh(self, spacing: float, max_points: int = 200_000) -> np.ndarray:
        pts = self.base.mesh(spacing, max_points)
        depth = self.base.effective_spacing(spacing, max_points)
        keep = np.ones(pts.shape[0], dtype=bool)
        for o in self.obstacles:
            keep &= ~_deep_interior_mask(o, pts, depth)
        return pts[keep]

    def effective_spacing(
        self, spacing: float, max_points: int = 200_000
    ) -> float:
        return self.base.effective_spacing(spacing, max_points)

    def __repr__(self) -> str:
        label = self.name or "DifferenceSet"
        return (
            f"{label}(base={self.base!r}, obstacles={len(self.obstacles)})"
        )


# ----------------------------------------------------------------------
# serializable region specifications


@dataclass(frozen=True)
class RegionSpec:
    """A canonical, hashable description of a composed region.

    ``RegionSpec`` is what crosses process and cache boundaries: it
    serializes to a canonical nested dict (:meth:`to_dict`), rebuilds
    the concrete set (:meth:`build`), and hashes stably
    (:meth:`canonical_key`) so service request manifests that embed a
    region stay content-addressed.  All fields are tuples — the spec is
    frozen and usable as a dict key.
    """

    kind: str  # "box" | "ball" | "union" | "difference"
    name: str = ""
    lo: Optional[Tuple[float, ...]] = None
    hi: Optional[Tuple[float, ...]] = None
    center: Optional[Tuple[float, ...]] = None
    radius: Optional[float] = None
    pieces: Tuple["RegionSpec", ...] = field(default_factory=tuple)
    base: Optional["RegionSpec"] = None
    obstacles: Tuple["RegionSpec", ...] = field(default_factory=tuple)

    # -- constructors ---------------------------------------------------
    @classmethod
    def box(
        cls, lo: Sequence[float], hi: Sequence[float], name: str = ""
    ) -> "RegionSpec":
        return cls(
            kind="box",
            name=name,
            lo=tuple(float(v) for v in lo),
            hi=tuple(float(v) for v in hi),
        )

    @classmethod
    def ball(
        cls, center: Sequence[float], radius: float, name: str = ""
    ) -> "RegionSpec":
        return cls(
            kind="ball",
            name=name,
            center=tuple(float(v) for v in center),
            radius=float(radius),
        )

    @classmethod
    def union_of(cls, *pieces: "RegionSpec", name: str = "") -> "RegionSpec":
        return cls(kind="union", name=name, pieces=tuple(pieces))

    @classmethod
    def difference(
        cls, base: "RegionSpec", *obstacles: "RegionSpec", name: str = ""
    ) -> "RegionSpec":
        return cls(
            kind="difference", name=name, base=base, obstacles=tuple(obstacles)
        )

    @classmethod
    def box_minus_obstacles(
        cls,
        lo: Sequence[float],
        hi: Sequence[float],
        obstacles: Sequence["RegionSpec"],
        name: str = "",
    ) -> "RegionSpec":
        return cls.difference(
            cls.box(lo, hi, name=f"{name}_base" if name else ""),
            *obstacles,
            name=name,
        )

    # -- realization ----------------------------------------------------
    def build(self) -> SemialgebraicSet:
        if self.kind == "box":
            return Box(list(self.lo), list(self.hi), name=self.name)
        if self.kind == "ball":
            return Ball(list(self.center), self.radius, name=self.name)
        if self.kind == "union":
            return UnionSet(
                [p.build() for p in self.pieces], name=self.name
            )
        if self.kind == "difference":
            return DifferenceSet(
                self.base.build(),
                [o.build() for o in self.obstacles],
                name=self.name,
            )
        raise ValueError(f"unknown region kind {self.kind!r}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.kind == "box":
            doc["lo"] = list(self.lo)
            doc["hi"] = list(self.hi)
        elif self.kind == "ball":
            doc["center"] = list(self.center)
            doc["radius"] = self.radius
        elif self.kind == "union":
            doc["pieces"] = [p.to_dict() for p in self.pieces]
        elif self.kind == "difference":
            doc["base"] = self.base.to_dict()
            doc["obstacles"] = [o.to_dict() for o in self.obstacles]
        else:
            raise ValueError(f"unknown region kind {self.kind!r}")
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RegionSpec":
        kind = doc.get("kind")
        name = doc.get("name", "")
        if kind == "box":
            return cls.box(doc["lo"], doc["hi"], name=name)
        if kind == "ball":
            return cls.ball(doc["center"], doc["radius"], name=name)
        if kind == "union":
            return cls.union_of(
                *[cls.from_dict(p) for p in doc["pieces"]], name=name
            )
        if kind == "difference":
            return cls.difference(
                cls.from_dict(doc["base"]),
                *[cls.from_dict(o) for o in doc["obstacles"]],
                name=name,
            )
        raise ValueError(f"unknown region kind {kind!r}")

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )

    def canonical_key(self) -> str:
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()


def region_spec_of(region: SemialgebraicSet) -> RegionSpec:
    """Recover the :class:`RegionSpec` describing a concrete region."""
    if isinstance(region, Box):
        return RegionSpec.box(region.lo, region.hi, name=region.name)
    if isinstance(region, Ball):
        return RegionSpec.ball(
            region.center, region.radius, name=region.name
        )
    if isinstance(region, UnionSet):
        return RegionSpec.union_of(
            *[region_spec_of(p) for p in region.pieces], name=region.name
        )
    if isinstance(region, DifferenceSet):
        return RegionSpec.difference(
            region_spec_of(region.base),
            *[region_spec_of(o) for o in region.obstacles],
            name=region.name,
        )
    raise RegionAlgebraError(
        f"cannot derive a RegionSpec for {type(region).__name__} "
        f"{region.name or '<anonymous>'}"
    )
