"""Compact semialgebraic sets: boxes, balls, and generic constraint sets.

The SNBC pipeline assumes the initial set Theta, the domain Psi and the
unsafe set Xi are compact semialgebraic sets described by polynomial
inequalities ``g_i(x) >= 0``.  This package provides those descriptions plus
sampling (needed by the Learner) and membership tests (needed by the
counterexample generator).
"""

from repro.sets.semialgebraic import Ball, Box, SemialgebraicSet

__all__ = ["Box", "Ball", "SemialgebraicSet"]
