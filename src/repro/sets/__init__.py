"""Compact semialgebraic sets: boxes, balls, generic sets, and algebra.

The SNBC pipeline assumes the initial set Theta, the domain Psi and the
unsafe set Xi are compact semialgebraic sets described by polynomial
inequalities ``g_i(x) >= 0``.  This package provides those descriptions plus
sampling (needed by the Learner) and membership tests (needed by the
counterexample generator).

:mod:`repro.sets.algebra` adds composite regions — :class:`UnionSet`
("union of rooms") and :class:`DifferenceSet` ("box minus obstacles") —
with exact membership, stratified sampling, a basic-cell
``decompose()`` contract consumed by the verifiers, and a serializable
:class:`RegionSpec` whose canonical hash keeps service request
manifests content-addressed.
"""

from repro.sets.algebra import (
    DifferenceSet,
    RegionAlgebraError,
    RegionSpec,
    UnionSet,
    region_spec_of,
)
from repro.sets.semialgebraic import Ball, Box, SemialgebraicSet

__all__ = [
    "Ball",
    "Box",
    "DifferenceSet",
    "RegionAlgebraError",
    "RegionSpec",
    "SemialgebraicSet",
    "UnionSet",
    "region_spec_of",
]
