"""Semialgebraic set descriptions with sampling and membership."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.poly import Polynomial


class SemialgebraicSet:
    """A basic closed semialgebraic set ``{x : g_i(x) >= 0 for all i}``.

    Parameters
    ----------
    n_vars:
        Ambient dimension.
    constraints:
        Polynomials ``g_i``; the set is the intersection of their
        nonnegativity regions.
    bounding_box:
        Optional ``(lo, hi)`` box known to contain the set; required for
        rejection sampling of generic sets.  :class:`Box` and :class:`Ball`
        fill it automatically.
    name:
        Optional label used in diagnostics.
    """

    def __init__(
        self,
        n_vars: int,
        constraints: Sequence[Polynomial],
        bounding_box: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        name: str = "",
    ):
        self.n_vars = int(n_vars)
        self.constraints: Tuple[Polynomial, ...] = tuple(constraints)
        for g in self.constraints:
            if g.n_vars != n_vars:
                raise ValueError("constraint variable count mismatch")
        if bounding_box is not None:
            lo = np.asarray(bounding_box[0], dtype=float)
            hi = np.asarray(bounding_box[1], dtype=float)
            if lo.shape != (n_vars,) or hi.shape != (n_vars,):
                raise ValueError("bounding box must match dimension")
            if np.any(lo > hi):
                raise ValueError("bounding box has lo > hi")
            self.bounding_box: Optional[Tuple[np.ndarray, np.ndarray]] = (lo, hi)
        else:
            self.bounding_box = None
        self.name = name

    # ------------------------------------------------------------------
    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        """Boolean membership for one point or a batch.

        ``tol >= 0`` loosens the test to ``g_i(x) >= -tol``.
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        mask = np.ones(pts.shape[0], dtype=bool)
        for g in self.constraints:
            mask &= np.asarray(g(pts)) >= -tol
        return bool(mask[0]) if single else mask

    def violation(self, points: np.ndarray) -> np.ndarray:
        """Max over constraints of ``max(0, -g_i(x))``; 0 means inside."""
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        worst = np.zeros(pts.shape[0])
        for g in self.constraints:
            worst = np.maximum(worst, -np.asarray(g(pts)))
        worst = np.maximum(worst, 0.0)
        return float(worst[0]) if single else worst

    def sample(
        self,
        n_samples: int,
        rng: Optional[np.random.Generator] = None,
        max_attempts: Optional[int] = None,
    ) -> np.ndarray:
        """Uniform-ish samples via rejection from the bounding box.

        The rejection loop is bounded: after ``max_attempts`` candidate
        draws (default ``1000 * n_samples``) without filling the request
        a typed :class:`~repro.resilience.errors.SamplingError` is
        raised instead of spinning forever on an empty or
        near-measure-zero set.
        """
        if self.bounding_box is None:
            raise ValueError(
                f"set {self.name or '<anonymous>'} needs a bounding_box to sample"
            )
        if n_samples <= 0:
            return np.empty((0, self.n_vars))
        rng = rng or np.random.default_rng()
        lo, hi = self.bounding_box
        out: List[np.ndarray] = []
        attempts = 0
        budget = (
            int(max_attempts)
            if max_attempts is not None
            else 1000 * max(1, n_samples)
        )
        while sum(len(b) for b in out) < n_samples:
            batch = rng.uniform(lo, hi, size=(max(64, n_samples), self.n_vars))
            keep = batch[self.contains(batch)]
            if len(keep):
                out.append(keep)
            attempts += len(batch)
            if attempts >= budget and sum(len(b) for b in out) < n_samples:
                from repro.resilience.errors import SamplingError

                accepted = sum(len(b) for b in out)
                raise SamplingError(
                    f"rejection sampling failed for set "
                    f"{self.name or '<anonymous>'}: accepted {accepted}/"
                    f"{n_samples} after {attempts} attempts",
                    region=self.name or "<anonymous>",
                    requested=int(n_samples),
                    attempts=int(attempts),
                )
        return np.concatenate(out)[:n_samples]

    def project(self, points: np.ndarray) -> np.ndarray:
        """Clip points into the bounding box (exact projection for boxes)."""
        if self.bounding_box is None:
            return np.asarray(points, dtype=float)
        lo, hi = self.bounding_box
        return np.clip(np.asarray(points, dtype=float), lo, hi)

    def decompose(self) -> Tuple["SemialgebraicSet", ...]:
        """Basic semialgebraic cells whose union covers this set.

        A basic set is its own single cell.  Composite regions
        (:class:`~repro.sets.algebra.UnionSet`,
        :class:`~repro.sets.algebra.DifferenceSet`) override this to
        return one basic cell per piece; downstream verifiers prove one
        certificate per cell and conjoin the verdicts.
        """
        return (self,)

    def volume_estimate(self) -> float:
        """Deterministic volume (or over-estimate) used for stratified
        allocation; the generic fallback is the bounding-box volume."""
        if self.bounding_box is None:
            raise ValueError(
                f"set {self.name or '<anonymous>'} needs a bounding_box "
                "for a volume estimate"
            )
        lo, hi = self.bounding_box
        return float(np.prod(hi - lo))

    def __repr__(self) -> str:
        label = self.name or "SemialgebraicSet"
        return f"{label}(n_vars={self.n_vars}, n_constraints={len(self.constraints)})"


class Box(SemialgebraicSet):
    """An axis-aligned box ``{x : lo_i <= x_i <= hi_i}``.

    Each coordinate contributes one quadratic constraint
    ``(x_i - lo_i)(hi_i - x_i) >= 0``, the standard encoding for Putinar
    certificates on boxes.
    """

    def __init__(self, lo: Sequence[float], hi: Sequence[float], name: str = ""):
        lo_arr = np.asarray(lo, dtype=float)
        hi_arr = np.asarray(hi, dtype=float)
        if lo_arr.ndim != 1 or lo_arr.shape != hi_arr.shape:
            raise ValueError("lo and hi must be 1-D arrays of equal length")
        n = lo_arr.shape[0]
        constraints = []
        for i in range(n):
            xi = Polynomial.variable(n, i)
            constraints.append((xi - float(lo_arr[i])) * (float(hi_arr[i]) - xi))
        super().__init__(n, constraints, bounding_box=(lo_arr, hi_arr), name=name)
        self.lo = lo_arr
        self.hi = hi_arr

    @classmethod
    def cube(cls, n_vars: int, lo: float, hi: float, name: str = "") -> "Box":
        """A cube with identical bounds per coordinate."""
        return cls([lo] * n_vars, [hi] * n_vars, name=name)

    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        mask = np.all((pts >= self.lo - tol) & (pts <= self.hi + tol), axis=1)
        return bool(mask[0]) if single else mask

    def sample(
        self,
        n_samples: int,
        rng: Optional[np.random.Generator] = None,
        max_attempts: Optional[int] = None,
    ) -> np.ndarray:
        rng = rng or np.random.default_rng()
        return rng.uniform(
            self.lo, self.hi, size=(max(0, n_samples), self.n_vars)
        )

    def mesh(self, spacing: float, max_points: int = 200_000) -> np.ndarray:
        """Rectangular mesh with the given spacing (Chebyshev inclusion, §3).

        Spacing is widened uniformly if the full grid would exceed
        ``max_points`` — the Theorem 2 error bound is then reported with the
        effective spacing actually used.
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        widths = self.hi - self.lo
        counts = np.maximum(2, np.ceil(widths / spacing).astype(int) + 1)
        while np.prod(counts.astype(float)) > max_points:
            counts = np.maximum(2, counts - 1)
            if np.all(counts == 2):
                break
        axes = [np.linspace(l, h, int(c)) for l, h, c in zip(self.lo, self.hi, counts)]
        grid = np.meshgrid(*axes, indexing="ij")
        return np.stack([g.ravel() for g in grid], axis=1)

    def effective_spacing(self, spacing: float, max_points: int = 200_000) -> float:
        """Largest per-axis gap of :meth:`mesh` with the same arguments."""
        widths = self.hi - self.lo
        counts = np.maximum(2, np.ceil(widths / spacing).astype(int) + 1)
        while np.prod(counts.astype(float)) > max_points:
            counts = np.maximum(2, counts - 1)
            if np.all(counts == 2):
                break
        gaps = widths / (counts - 1)
        return float(np.max(gaps))

    def volume(self) -> float:
        """Lebesgue volume of the box."""
        return float(np.prod(self.hi - self.lo))

    def volume_estimate(self) -> float:
        return self.volume()

    def __repr__(self) -> str:
        label = self.name or "Box"
        return f"{label}(lo={self.lo.tolist()}, hi={self.hi.tolist()})"


class Ball(SemialgebraicSet):
    """A Euclidean ball ``{x : ||x - center||^2 <= radius^2}``."""

    def __init__(self, center: Sequence[float], radius: float, name: str = ""):
        center_arr = np.asarray(center, dtype=float)
        if center_arr.ndim != 1:
            raise ValueError("center must be a 1-D array")
        if radius <= 0:
            raise ValueError("radius must be positive")
        n = center_arr.shape[0]
        g = Polynomial.constant(n, radius ** 2)
        for i in range(n):
            xi = Polynomial.variable(n, i)
            g = g - (xi - float(center_arr[i])) ** 2
        lo = center_arr - radius
        hi = center_arr + radius
        super().__init__(n, [g], bounding_box=(lo, hi), name=name)
        self.center = center_arr
        self.radius = float(radius)

    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        d2 = np.sum((pts - self.center) ** 2, axis=1)
        mask = d2 <= self.radius ** 2 + tol
        return bool(mask[0]) if single else mask

    def sample(
        self,
        n_samples: int,
        rng: Optional[np.random.Generator] = None,
        max_attempts: Optional[int] = None,
    ) -> np.ndarray:
        """Exact uniform sampling in the ball (normalized Gaussian trick)."""
        rng = rng or np.random.default_rng()
        n_samples = max(0, n_samples)
        direction = rng.normal(size=(n_samples, self.n_vars))
        norms = np.linalg.norm(direction, axis=1, keepdims=True)
        direction /= np.where(norms > 0, norms, 1.0)
        r = self.radius * rng.uniform(size=(n_samples, 1)) ** (1.0 / self.n_vars)
        return self.center + direction * r

    def volume_estimate(self) -> float:
        """Exact ball volume ``r^n * pi^(n/2) / Gamma(n/2 + 1)``."""
        n = self.n_vars
        from math import gamma, pi

        return float(self.radius ** n * pi ** (n / 2.0) / gamma(n / 2.0 + 1.0))

    def __repr__(self) -> str:
        label = self.name or "Ball"
        return f"{label}(center={self.center.tolist()}, radius={self.radius})"
