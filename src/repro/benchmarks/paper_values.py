"""The paper's published Table 1 numbers, as data.

Transcribed from the DAC'24 paper for programmatic paper-vs-measured
comparison (EXPERIMENTS.md).  ``None`` encodes the paper's non-numeric
cells: FOSSIL "OT" (> 7200 s timeout) and the "x" marks (no certificate
within the degree bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperRow:
    """One benchmark row of the paper's Table 1."""

    n_x: int
    d_f: int
    # SNBC columns
    snbc_d_b: int
    snbc_iters: int
    snbc_t_learn: float
    snbc_t_cex: float
    snbc_t_verify: float
    snbc_t_total: float
    # FOSSIL columns (None -> OT)
    fossil_t_total: Optional[float]
    # NNCChecker columns (None -> x)
    nnc_t_total: Optional[float]
    # SOSTOOLS column (None -> x)
    sos_t_total: Optional[float]


#: Table 1 as printed (times in seconds).
PAPER_TABLE1: Dict[str, PaperRow] = {
    "C1": PaperRow(2, 3, 2, 1, 0.166, 0.0, 0.278, 0.444, 3.899, 5.563, 0.133),
    "C2": PaperRow(2, 3, 2, 1, 0.388, 0.0, 0.295, 0.683, 4.052, 5.293, 0.115),
    "C3": PaperRow(2, 2, 2, 1, 0.295, 0.0, 0.279, 0.574, 3.229, 4.055, 0.125),
    "C4": PaperRow(2, 2, 2, 1, 0.490, 0.0, 0.335, 0.825, 63.177, 4.022, 0.149),
    "C5": PaperRow(2, 3, 2, 1, 0.032, 0.0, 0.297, 0.329, 0.344, 4.582, None),
    "C6": PaperRow(3, 3, 2, 1, 0.379, 0.0, 0.556, 0.935, 1.655, 5.378, 0.248),
    "C7": PaperRow(3, 2, 2, 2, 1.286, 0.084, 0.948, 2.318, 2.659, 5.720, 0.478),
    "C8": PaperRow(4, 3, 2, 1, 0.207, 0.0, 1.256, 1.463, 6898.807, 159.316, 3.039),
    "C9": PaperRow(5, 2, 2, 4, 2.731, 3.232, 7.814, 13.777, None, 528.281, 18.247),
    "C10": PaperRow(6, 2, 2, 4, 11.346, 8.933, 13.625, 33.904, None, None, None),
    "C11": PaperRow(6, 3, 2, 8, 18.341, 6.405, 25.221, 49.967, None, None, None),
    "C12": PaperRow(7, 1, 2, 12, 294.269, 23.428, 50.955, 368.652, None, None, 2037.865),
    "C13": PaperRow(9, 1, 2, 8, 72.795, 452.513, 95.074, 620.382, None, None, None),
    "C14": PaperRow(12, 1, 2, 25, 28.089, 7.123, 967.559, 1002.771, None, None, 1210.985),
}

#: aggregate claims quoted in Section 5
PAPER_CLAIMS = {
    "snbc_solved": 14,
    "fossil_solved": 8,
    "nncchecker_solved": 9,
    "sostools_solved": 10,
    "fossil_speedup_vs_snbc": 922.01,
    "nncchecker_speedup_vs_snbc": 25.62,
    "sostools_c12_speedup": 5.53,
}


def paper_verify_fraction(name: str) -> float:
    """Fraction of the SNBC total spent in verification (paper values)."""
    row = PAPER_TABLE1[name]
    return row.snbc_t_verify / row.snbc_t_total


def verification_dominates_high_dim() -> bool:
    """The paper's scaling signature: T_v/T_e grows from C1 to C14."""
    return paper_verify_fraction("C14") > paper_verify_fraction("C1")
