"""Benchmark specification: system + sets + network shapes + controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.cegis import CexConfig, SNBCConfig
from repro.controllers import (
    NNController,
    behavior_clone,
    linear_feedback_fn,
    lqr_gain,
)
from repro.dynamics import CCDS
from repro.learner import LearnerConfig
from repro.verifier import VerifierConfig


@dataclass
class BenchmarkSpec:
    """One Table 1 row.

    ``b_hidden`` / ``lambda_hidden`` mirror the ``NN_B`` / ``NN_lambda``
    columns (``lambda_hidden=None`` is the constant multiplier ``c``).
    """

    name: str
    make_problem: Callable[[], CCDS]
    source: str
    d_f: int
    n_x: int
    b_hidden: Tuple[int, ...]
    lambda_hidden: Optional[Tuple[int, ...]]
    controller_hidden: Tuple[int, ...] = (8,)
    controller_scale: Optional[float] = None
    #: "lipschitz" uses the Theorem 2 mesh bound (sound; dense meshes only),
    #: "empirical" uses a sampled max-error bound (documented heuristic for
    #: n_x where a covering mesh is impossible)
    inclusion_error_mode: str = "lipschitz"
    inclusion_spacing: float = 0.1
    inclusion_degree: int = 2
    n_samples: int = 500
    learner_epochs: int = 600
    learner_lr: float = 0.02
    max_iterations: int = 12
    seed: int = 0
    notes: str = ""

    # ------------------------------------------------------------------
    def make_controller(self, seed: Optional[int] = None) -> NNController:
        """Behaviour-clone the LQR expert into a tanh NN controller."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        problem = self.make_problem()
        system = problem.system
        k = NNController(
            system.n_vars,
            system.n_inputs,
            hidden=self.controller_hidden,
            output_scale=self.controller_scale,
            rng=rng,
        )
        K = lqr_gain(system)
        # cloning only needs to sample the domain, so any bounded region
        # (box, or a composite like Q1's box-minus-obstacles) works
        assert problem.psi.bounding_box is not None, "benchmark domains are bounded"
        behavior_clone(
            k,
            linear_feedback_fn(K),
            problem.psi,
            n_samples=2048,
            epochs=150,
            rng=rng,
        )
        return k

    def learner_config(self) -> LearnerConfig:
        return LearnerConfig(
            b_hidden=self.b_hidden,
            lambda_hidden=self.lambda_hidden,
            epochs=self.learner_epochs,
            lr=self.learner_lr,
            seed=self.seed,
        )

    def snbc_config(self, scale: str = "paper") -> SNBCConfig:
        """Loop configuration; ``scale='smoke'`` shrinks budgets for CI."""
        if scale == "smoke":
            return SNBCConfig(
                max_iterations=min(4, self.max_iterations),
                # 200 samples suffice below 4 dimensions; higher-dimensional
                # domains need denser coverage even in smoke mode
                n_samples=min(200 if self.n_x < 4 else 500, self.n_samples),
                inclusion_degree=self.inclusion_degree,
                inclusion_spacing=max(self.inclusion_spacing, 0.2),
                inclusion_max_mesh=5_000,
                inclusion_error_mode=self.inclusion_error_mode,
                seed=self.seed,
            )
        return SNBCConfig(
            max_iterations=self.max_iterations,
            n_samples=self.n_samples,
            inclusion_degree=self.inclusion_degree,
            inclusion_spacing=self.inclusion_spacing,
            inclusion_max_mesh=50_000,
            inclusion_error_mode=self.inclusion_error_mode,
            seed=self.seed,
        )

    def table_row(self) -> dict:
        """Static metadata for the Table 1 reproduction harness."""
        lam = (
            "c"
            if self.lambda_hidden is None
            else "-".join(str(s) for s in (self.n_x, *self.lambda_hidden, 1))
        )
        return {
            "name": self.name,
            "n_x": self.n_x,
            "d_f": self.d_f,
            "NN_B": "-".join(str(s) for s in (self.n_x, *self.b_hidden, 1)),
            "NN_lambda": lam,
            "source": self.source,
        }
