"""Benchmark systems: the paper's Example 1 and Table 1's C1-C14.

The paper does not print the benchmark dynamics (they are gathered from six
cited sources); each entry here is a *reconstruction* matching the row's
dimension ``n_x``, vector-field degree ``d_f``, citation family and network
shapes, with box/ball initial, domain and unsafe sets in the style of
Example 1.  See DESIGN.md for the substitution rationale.

Usage::

    from repro.benchmarks import get_benchmark, list_benchmarks
    spec = get_benchmark("C7")
    problem = spec.make_problem()
    controller = spec.make_controller()
"""

from repro.benchmarks.spec import BenchmarkSpec
from repro.benchmarks.systems import BENCHMARKS, get_benchmark, list_benchmarks

__all__ = ["BenchmarkSpec", "BENCHMARKS", "get_benchmark", "list_benchmarks"]
