"""The benchmark registry: Example 1 and reconstructions of C1-C14.

Every entry matches its Table 1 row in dimension ``n_x``, vector-field
degree ``d_f``, citation family, and the ``NN_B`` / ``NN_lambda`` shapes.
The dynamics are reconstructions in the style of the cited sources (the
paper prints only Example 1); sets follow the Example 1 pattern — a small
initial box/ball at the origin, a symmetric box domain, and an unsafe
region in a far corner.  Controllers are NN policies behaviour-cloned from
LQR (see :class:`repro.benchmarks.spec.BenchmarkSpec`).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.benchmarks.spec import BenchmarkSpec
from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Ball, Box, DifferenceSet, UnionSet


def _vars(n: int):
    return Polynomial.variables(n)


def _corner_ball(n: int, coord: float = 1.6, radius: float = 0.3) -> Ball:
    center = np.zeros(n)
    center[0] = coord
    center[1 if n > 1 else 0] = coord
    return Ball(center, radius, name="xi")


# ----------------------------------------------------------------------
# Example 1: Academic 3D model (paper eq. (18)) — exact
# ----------------------------------------------------------------------
def example1_problem() -> CCDS:
    x, y, z = _vars(3)
    f0 = [z + 8.0 * y, -1.0 * y + z, -1.0 * z - x * x]
    system = ControlAffineSystem.single_input(f0, [0.0, 0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(3, -0.4, 0.4, name="theta"),
        psi=Box.cube(3, -2.2, 2.2, name="psi"),
        xi=Box.cube(3, 2.0, 2.2, name="xi"),
        name="example1",
        source="paper Example 1 (Academic 3D model)",
    )


# ----------------------------------------------------------------------
# C1-C5: two-dimensional systems
# ----------------------------------------------------------------------
def c1_problem() -> CCDS:
    # Chesi'04 family: cubic oscillator with damping, control on velocity
    x1, x2 = _vars(2)
    f0 = [x2, -1.0 * x1 + (1.0 / 3.0) * x1 ** 3 - x2]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="C1",
        source="Chesi 2004 (reconstruction)",
    )


def c2_problem() -> CCDS:
    # Chen CAV'20 family: cubic drift in both states
    x1, x2 = _vars(2)
    f0 = [x2 - 1.0 * x1 ** 3, -1.0 * x1 - 1.0 * x2 ** 3]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="C2",
        source="Chen et al. CAV 2020 (reconstruction)",
    )


def c3_problem() -> CCDS:
    # Chesi'04 family, quadratic drift
    x1, x2 = _vars(2)
    f0 = [x2, -1.0 * x1 + x1 ** 2 - x2]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="C3",
        source="Chesi 2004 (reconstruction)",
    )


def c4_problem() -> CCDS:
    # Zeng EMSOFT'16 (Darboux) family, quadratic cross term
    x1, x2 = _vars(2)
    f0 = [-1.0 * x1 + 2.0 * x2 + x1 * x2, -1.0 * x2]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="C4",
        source="Zeng et al. EMSOFT 2016 (reconstruction)",
    )


def c5_problem() -> CCDS:
    # Zeng EMSOFT'16 family, cubic velocity damping
    x1, x2 = _vars(2)
    f0 = [x2, -1.0 * x1 - 1.0 * x2 - 0.5 * x2 ** 3]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="C5",
        source="Zeng et al. EMSOFT 2016 (reconstruction)",
    )


# ----------------------------------------------------------------------
# C6-C8: three- and four-dimensional systems
# ----------------------------------------------------------------------
def c6_problem() -> CCDS:
    # Chen CAV'20 family, 3D chain with a cubic coupling
    x1, x2, x3 = _vars(3)
    f0 = [x2, x3, -1.0 * x1 - 2.0 * x2 - 2.0 * x3 + 0.2 * x1 ** 2 * x2]
    system = ControlAffineSystem.single_input(f0, [0.0, 0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(3, -0.3, 0.3, name="theta"),
        psi=Box.cube(3, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4, -2.0], [1.8, 1.8, 2.0], name="xi"),
        name="C6",
        source="Chen et al. CAV 2020 (reconstruction)",
    )


def c7_problem() -> CCDS:
    # Deshmukh ICCAD'19 family, 3D quadratic chain
    x1, x2, x3 = _vars(3)
    f0 = [x2, x3, -2.0 * x1 - 3.0 * x2 - 2.0 * x3 + 0.2 * x2 ** 2]
    system = ControlAffineSystem.single_input(f0, [0.0, 0.0, 1.0])
    return CCDS(
        system,
        theta=Box.cube(3, -0.3, 0.3, name="theta"),
        psi=Box.cube(3, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4, -2.0], [1.8, 1.8, 2.0], name="xi"),
        name="C7",
        source="Deshmukh et al. ICCAD 2019 (reconstruction)",
    )


def c8_problem() -> CCDS:
    # Chesi'04 family, two coupled cubic oscillators (control on the first);
    # the cubic softening keeps the uncontrolled pair's basin of attraction
    # covering the domain box (unstable only beyond |x3| = 2 > 1.8)
    x1, x2, x3, x4 = _vars(4)
    f0 = [
        x2,
        -1.0 * x1 + 0.25 * x1 ** 3 - x2,
        x4,
        -1.0 * x3 + 0.25 * x3 ** 3 - x4,
    ]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0, 0.0, 0.0])
    return CCDS(
        system,
        theta=Ball(np.zeros(4), 0.4, name="theta"),
        psi=Box.cube(4, -1.8, 1.8, name="psi"),
        xi=_corner_ball(4, coord=1.4, radius=0.3),
        name="C8",
        source="Chesi 2004 (reconstruction)",
    )


# ----------------------------------------------------------------------
# C9-C11: five- and six-dimensional chains
# ----------------------------------------------------------------------
def _chain_problem(
    n: int,
    name: str,
    source: str,
    coupling_power: int,
    coupling_gain: float = 0.1,
    linear_gain: float = 0.5,
) -> CCDS:
    xs = _vars(n)
    f0: List[Polynomial] = []
    for i in range(n - 1):
        fi = -1.0 * xs[i] + linear_gain * xs[i + 1]
        if coupling_power > 1:
            fi = fi + coupling_gain * xs[i + 1] ** coupling_power
        f0.append(fi)
    f0.append(-1.0 * xs[n - 1])
    system = ControlAffineSystem.single_input(f0, [0.0] * (n - 1) + [1.0])
    return CCDS(
        system,
        theta=Ball(np.zeros(n), 0.4, name="theta"),
        psi=Box.cube(n, -1.8, 1.8, name="psi"),
        xi=_corner_ball(n, coord=1.4, radius=0.3),
        name=name,
        source=source,
    )


def c9_problem() -> CCDS:
    # Sassi & Sankaranarayanan'15 family: 5D quadratic chain
    prob = _chain_problem(
        5, "C9", "Sassi & Sankaranarayanan 2015 (reconstruction)", coupling_power=2
    )
    return prob


def c10_problem() -> CCDS:
    return _chain_problem(
        6, "C10", "Zeng et al. EMSOFT 2016 (reconstruction)", coupling_power=2
    )


def c11_problem() -> CCDS:
    return _chain_problem(
        6, "C11", "Chen et al. CAV 2020 (reconstruction)", coupling_power=3
    )


# ----------------------------------------------------------------------
# C12-C13: linear systems-biology pathways (Klipp et al. 2005)
# ----------------------------------------------------------------------
def _pathway_problem(n: int, name: str, rate: float = 0.5) -> CCDS:
    # linear signalling cascade: x1 driven by u, each species converts into
    # the next (rate < degradation keeps the chain's Lyapunov conditioning
    # moderate — long unit-rate cascades are so non-normal that no quadratic
    # form separates the Example 1-style sets)
    xs = _vars(n)
    f0: List[Polynomial] = [-1.0 * xs[0]]
    for i in range(1, n):
        f0.append(rate * xs[i - 1] - 1.0 * xs[i])
    system = ControlAffineSystem.single_input(f0, [1.0] + [0.0] * (n - 1))
    return CCDS(
        system,
        theta=Ball(np.zeros(n), 0.4, name="theta"),
        psi=Box.cube(n, -1.8, 1.8, name="psi"),
        xi=_corner_ball(n, coord=1.4, radius=0.3),
        name=name,
        source="Klipp et al. 2005 systems-biology pathway (reconstruction)",
    )


def c12_problem() -> CCDS:
    return _pathway_problem(7, "C12")


def c13_problem() -> CCDS:
    return _pathway_problem(9, "C13")


# ----------------------------------------------------------------------
# C14: 12-state quadcopter (dReal benchmark suite)
# ----------------------------------------------------------------------
def c14_problem() -> CCDS:
    """Inner-loop-stabilized quadcopter linearization.

    States: ``(px, py, pz, vx, vy, vz, phi, theta, psi_a, p, q, r)``.  The
    single NN input commands thrust (acting on ``vz``); attitude is
    stabilized by an (assumed) inner loop and horizontal drift is damped by
    drag — the modelling choices that keep a 12-state single-input instance
    stabilizable are documented in DESIGN.md.  Positions/velocities are
    non-dimensionalized (10 m units, so the gravity coupling is 0.98) to
    keep the closed-loop Lyapunov shape well-conditioned.
    """
    n = 12
    xs = _vars(n)
    px, py, pz, vx, vy, vz, phi, theta, psi_a, p, q, r = xs
    g = 0.98
    f0 = [
        vx - 0.5 * px,
        vy - 0.5 * py,
        vz - 0.5 * pz,
        g * theta - 1.0 * vx,
        -g * phi - 1.0 * vy,
        -0.3 * vz,
        p,
        q,
        r,
        -4.0 * phi - 4.0 * p,
        -4.0 * theta - 4.0 * q,
        -4.0 * psi_a - 4.0 * r,
    ]
    gains = [0.0] * n
    gains[5] = 1.0  # thrust acts on vz
    system = ControlAffineSystem.single_input(f0, gains)
    return CCDS(
        system,
        theta=Ball(np.zeros(n), 0.4, name="theta"),
        psi=Box.cube(n, -1.8, 1.8, name="psi"),
        xi=_corner_ball(n, coord=1.4, radius=0.3),
        name="C14",
        source="dReal quadcopter benchmark (inner-loop-stabilized reconstruction)",
    )


# ----------------------------------------------------------------------
# Q1: 2D quadrotor with obstacles (region-algebra workload)
# ----------------------------------------------------------------------
def q1_problem() -> CCDS:
    """Planar quadrotor hover (inner-loop-stabilized) in an obstacle-rich
    workspace: the domain is a floor box minus a block and a pillar, and
    the unsafe set is the union of those obstacles.  The composite
    regions exercise the full region-algebra path — per-cell Putinar
    certificates on the difference's cells, a union unsafe set, and the
    exact Q recheck of every per-cell certificate."""
    x1, x2 = _vars(2)
    # position/velocity hover model after inner-loop attitude stabilization
    f0 = [x2, -1.0 * x1 - 1.0 * x2]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    block = Box([1.4, 1.4], [1.8, 1.8], name="block")
    pillar = Ball([-1.2, -1.2], 0.35, name="pillar")
    floor = Box.cube(2, -2.0, 2.0, name="floor")
    return CCDS(
        system,
        theta=Ball([0.0, 0.0], 0.4, name="theta"),
        psi=DifferenceSet(floor, [block, pillar], name="psi"),
        xi=UnionSet([block, pillar], name="xi"),
        name="Q1",
        source="2D quadrotor-with-obstacles workload (region algebra)",
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _spec(**kw) -> BenchmarkSpec:
    return BenchmarkSpec(**kw)


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "example1": _spec(
        name="example1",
        make_problem=example1_problem,
        source="paper Example 1",
        d_f=2,
        n_x=3,
        b_hidden=(5,),
        lambda_hidden=(5,),
        inclusion_spacing=0.2,
        notes="the paper's running example, eq. (18)",
    ),
    "C1": _spec(
        name="C1", make_problem=c1_problem, source="[4] Chesi 2004", d_f=3, n_x=2,
        b_hidden=(10,), lambda_hidden=(5,),
    ),
    "C2": _spec(
        name="C2", make_problem=c2_problem, source="[3] Chen CAV 2020", d_f=3, n_x=2,
        b_hidden=(10,), lambda_hidden=(5,),
    ),
    "C3": _spec(
        name="C3", make_problem=c3_problem, source="[4] Chesi 2004", d_f=2, n_x=2,
        b_hidden=(5,), lambda_hidden=(5,),
    ),
    "C4": _spec(
        name="C4", make_problem=c4_problem, source="[16] Zeng EMSOFT 2016", d_f=2,
        n_x=2, b_hidden=(20,), lambda_hidden=(5,),
    ),
    "C5": _spec(
        name="C5", make_problem=c5_problem, source="[16] Zeng EMSOFT 2016", d_f=3,
        n_x=2, b_hidden=(5,), lambda_hidden=(5,),
    ),
    "C6": _spec(
        name="C6", make_problem=c6_problem, source="[3] Chen CAV 2020", d_f=3, n_x=3,
        b_hidden=(5,), lambda_hidden=(5,),
    ),
    "C7": _spec(
        name="C7", make_problem=c7_problem, source="[5] Deshmukh ICCAD 2019", d_f=2,
        n_x=3, b_hidden=(5,), lambda_hidden=(5,),
    ),
    "C8": _spec(
        name="C8", make_problem=c8_problem, source="[4] Chesi 2004", d_f=3, n_x=4,
        b_hidden=(5,), lambda_hidden=(5,), inclusion_error_mode="empirical",
    ),
    "C9": _spec(
        name="C9", make_problem=c9_problem,
        source="[13] Sassi & Sankaranarayanan 2015", d_f=2, n_x=5,
        b_hidden=(10,), lambda_hidden=(5, 5),
        inclusion_error_mode="empirical",
    ),
    "C10": _spec(
        name="C10", make_problem=c10_problem, source="[16] Zeng EMSOFT 2016", d_f=2,
        n_x=6, b_hidden=(15,), lambda_hidden=None,
        inclusion_error_mode="empirical",
    ),
    "C11": _spec(
        name="C11", make_problem=c11_problem, source="[3] Chen CAV 2020", d_f=3,
        n_x=6, b_hidden=(20,), lambda_hidden=None,
        inclusion_error_mode="empirical",
    ),
    "C12": _spec(
        name="C12", make_problem=c12_problem, source="[9] Klipp et al. 2005", d_f=1,
        n_x=7, b_hidden=(20,), lambda_hidden=(5,),
        inclusion_error_mode="empirical",
    ),
    "C13": _spec(
        name="C13", make_problem=c13_problem, source="[9] Klipp et al. 2005", d_f=1,
        n_x=9, b_hidden=(15,), lambda_hidden=None,
        inclusion_error_mode="empirical",
    ),
    "C14": _spec(
        name="C14", make_problem=c14_problem, source="[8] dReal quadcopter", d_f=1,
        n_x=12, b_hidden=(20,), lambda_hidden=None,
        inclusion_error_mode="empirical",
    ),
    "Q1": _spec(
        name="Q1", make_problem=q1_problem,
        source="obstacle workload (this repo)", d_f=1, n_x=2,
        b_hidden=(10,), lambda_hidden=(5,),
        notes="floor box minus block+pillar obstacles; unsafe set is the "
        "union of the obstacles (per-cell certificates)",
    ),
}


def list_benchmarks() -> List[str]:
    """Names in Table 1 order (example1 first)."""
    return list(BENCHMARKS)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name (KeyError lists the options)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from None
