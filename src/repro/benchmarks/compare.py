"""Shape comparison between measured results and the paper's Table 1.

Absolute timings are incomparable across hardware/solvers; what a
reproduction can check mechanically are the *qualitative signatures*.
:func:`check_table1_shape` takes measured SNBC rows (from
:func:`repro.analysis.report.run_snbc_rows`) and evaluates each signature,
returning a scorecard used by EXPERIMENTS.md and the summary bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.benchmarks.paper_values import PAPER_TABLE1


@dataclass
class ShapeCheck:
    """One qualitative signature of Table 1."""

    name: str
    passed: bool
    detail: str


def check_table1_shape(rows: Sequence) -> List[ShapeCheck]:
    """Evaluate the paper's qualitative signatures on measured rows.

    ``rows`` are :class:`repro.analysis.report.Table1Row` objects (any
    subset of C1..C14).  Checks that need specific rows are skipped
    (reported passed with a note) when those rows are absent.
    """
    by_name: Dict[str, object] = {r.name: r for r in rows}
    checks: List[ShapeCheck] = []

    # 1. universal solvability with degree-2 certificates
    solved = [r for r in rows if r.success]
    checks.append(
        ShapeCheck(
            "all_solved",
            len(solved) == len(rows),
            f"{len(solved)}/{len(rows)} systems solved",
        )
    )
    checks.append(
        ShapeCheck(
            "degree_2_everywhere",
            all(r.d_b == 2 for r in solved),
            f"degrees: {sorted({r.d_b for r in solved})}",
        )
    )

    # 2. verification dominates total time in the highest dimension measured
    if solved:
        top = max(solved, key=lambda r: r.n_x)
        frac = top.t_verify / max(top.t_total, 1e-9)
        paper_frac = (
            PAPER_TABLE1[top.name].snbc_t_verify
            / PAPER_TABLE1[top.name].snbc_t_total
            if top.name in PAPER_TABLE1
            else None
        )
        checks.append(
            ShapeCheck(
                "verification_dominates_high_dim",
                frac > 0.5 or top.n_x < 9,
                f"{top.name}: T_v/T_e = {frac:.2f}"
                + (f" (paper {paper_frac:.2f})" if paper_frac else ""),
            )
        )

    # 3. T_v grows with dimension (rank correlation sign)
    if len(solved) >= 3:
        ordered = sorted(solved, key=lambda r: (r.n_x, r.name))
        n = len(ordered)
        concordant = sum(
            1
            for i in range(n)
            for j in range(i + 1, n)
            if (ordered[j].n_x - ordered[i].n_x)
            * (ordered[j].t_verify - ordered[i].t_verify)
            > 0
        )
        pairs = sum(
            1
            for i in range(n)
            for j in range(i + 1, n)
            if ordered[j].n_x != ordered[i].n_x
        )
        tau = concordant / max(pairs, 1)
        checks.append(
            ShapeCheck(
                "t_verify_grows_with_dimension",
                tau > 0.6,
                f"concordance of (n_x, T_v): {tau:.2f}",
            )
        )

    # 4. learning time stays within a narrow band (not dimension-dominated)
    if len(solved) >= 3:
        t_ls = [r.t_learn for r in solved]
        spread = max(t_ls) / max(min(t_ls), 1e-9)
        t_vs_spread = max(r.t_verify for r in solved) / max(
            min(r.t_verify for r in solved), 1e-9
        )
        checks.append(
            ShapeCheck(
                "learning_flatter_than_verification",
                spread < t_vs_spread,
                f"T_l spread {spread:.1f}x vs T_v spread {t_vs_spread:.1f}x",
            )
        )

    return checks


def format_scorecard(checks: Sequence[ShapeCheck]) -> str:
    """Human-readable scorecard."""
    lines = ["Table 1 shape scorecard:"]
    for c in checks:
        mark = "PASS" if c.passed else "FAIL"
        lines.append(f"  [{mark}] {c.name}: {c.detail}")
    return "\n".join(lines)
