"""Counterexample generation (paper §4.3).

When a candidate fails verification, each violated condition defines a
violation functional ``V`` over its semialgebraic set (``V > 0`` means the
condition is broken there).  Following (16)-(17):

1. the *worst* point ``x*`` maximizes ``V`` — found here by multi-start
   projected gradient ascent on the polynomial violation (the paper's
   Lagrangian + gradient-descent scheme specialized to box-bounded sets);
2. a maximal radius ``gamma`` around ``x*`` on which the violation persists
   is found by doubling + bisection with sampled certification;
3. the counterexample set is sampled from ``ball(x*, gamma)`` intersected
   with the set, and handed back to the Learner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics import CCDS
from repro.poly import Polynomial, lie_derivative
from repro.sets import SemialgebraicSet
from repro.telemetry import get_telemetry


@dataclass
class CexConfig:
    """Search hyper-parameters for the counterexample generator."""

    n_starts: int = 16
    n_steps: int = 150
    step_size: float = 0.05
    n_points: int = 40
    gamma_max: float = 1.0
    gamma_samples: int = 48
    seed: int = 0
    #: evaluate violation values/gradients through compiled batched
    #: kernels (one matmul over the multi-start batch instead of
    #: per-polynomial sparse loops).  Off by default: the matmul changes
    #: the floating-point summation order, so counterexample bits — and
    #: with them the whole CEGIS trajectory — can shift relative to the
    #: reference path.  Enable for large state dimensions where the
    #: ascent loop dominates.
    compiled_kernels: bool = False


@dataclass
class Counterexample:
    """One violated condition with its worst point and sampled ball."""

    condition: str
    worst_point: np.ndarray
    worst_violation: float
    gamma: float
    points: np.ndarray


class _ViolationFn:
    """A violation functional with values and gradients on batches.

    With ``compiled=True`` the values and gradients go through
    :func:`repro.poly.fast_eval.compile_field`: the whole multi-start
    batch reduces to two matmuls per call.  The compiled path sums in a
    different floating-point order than the sparse per-polynomial loops,
    so it is *not* bit-for-bit identical — the generator only enables it
    when :attr:`CexConfig.compiled_kernels` is set.
    """

    def __init__(
        self,
        polys_pos: List[Polynomial],
        polys_abs: List[Tuple[float, Polynomial]],
        compiled: bool = False,
    ):
        # V(x) = sum p(x) + sum c * |q(x)|
        self.polys_pos = polys_pos
        self.polys_abs = polys_abs
        self.grads_pos = [p.grad() for p in polys_pos]
        self.grads_abs = [(c, q, q.grad()) for c, q in polys_abs]
        self.compiled = compiled
        if compiled:
            from repro.poly.fast_eval import compile_field

            self.n_vars = polys_pos[0].n_vars
            self._cf_pos = compile_field(polys_pos)
            self._cf_pos_grad = compile_field(
                [g for grads in self.grads_pos for g in grads]
            )
            if polys_abs:
                self._abs_c = np.array([c for c, _ in polys_abs])
                self._cf_abs = compile_field([q for _, q in polys_abs])
                self._cf_abs_grad = compile_field(
                    [g for _, _, grads in self.grads_abs for g in grads]
                )

    def value(self, pts: np.ndarray) -> np.ndarray:
        if self.compiled:
            out = self._cf_pos(pts).sum(axis=1)
            if self.polys_abs:
                out = out + (np.abs(self._cf_abs(pts)) * self._abs_c).sum(axis=1)
            return out
        out = np.zeros(len(pts))
        for p in self.polys_pos:
            out += p(pts)
        for c, q in self.polys_abs:
            out += c * np.abs(q(pts))
        return out

    def gradient(self, pts: np.ndarray) -> np.ndarray:
        if self.compiled:
            m, n = pts.shape
            out = (
                self._cf_pos_grad(pts)
                .reshape(m, len(self.polys_pos), n)
                .sum(axis=1)
            )
            if self.polys_abs:
                sign = np.sign(self._cf_abs(pts)) * self._abs_c  # (m, j)
                gq = self._cf_abs_grad(pts).reshape(m, len(self.polys_abs), n)
                out = out + (sign[:, :, None] * gq).sum(axis=1)
            return out
        out = np.zeros_like(pts)
        for grads in self.grads_pos:
            for i, g in enumerate(grads):
                out[:, i] += g(pts)
        for c, q, grads in self.grads_abs:
            sign = np.sign(q(pts))
            for i, g in enumerate(grads):
                out[:, i] += c * sign * g(pts)
        return out


class CounterexampleGenerator:
    """Builds counterexample sets for failed barrier conditions."""

    def __init__(
        self,
        problem: CCDS,
        controller_polys: Sequence[Polynomial],
        sigma_star: Optional[Sequence[float]] = None,
        config: Optional[CexConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.problem = problem
        self.controller_polys = list(controller_polys)
        m = problem.system.n_inputs
        self.sigma_star = (
            [0.0] * m if sigma_star is None else [float(s) for s in sigma_star]
        )
        self.config = config or CexConfig()
        # an injected generator lets SNBC derive all component streams
        # from one seed chain; standalone use keeps the config seed
        self.rng = rng if rng is not None else np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _violation_fn(self, condition: str, B: Polynomial, lam: Polynomial) -> Tuple[_ViolationFn, SemialgebraicSet]:
        compiled = self.config.compiled_kernels
        if condition == "init":
            # violated where B < 0 on Theta: V = -B
            return _ViolationFn([-1.0 * B], [], compiled=compiled), self.problem.theta
        if condition == "unsafe":
            # violated where B >= 0 on Xi: V = B
            return _ViolationFn([B], [], compiled=compiled), self.problem.xi
        if condition.startswith("lie"):
            # violated where worst-case Lie margin <= 0 on Psi:
            # margin = L_{f0+Gh} B - sum_j sigma*_j |grad B . G_j| - lam B
            field0 = self.problem.system.closed_loop(self.controller_polys)
            lfb = lie_derivative(B, field0)
            margin_pos = [-1.0 * (lfb - lam * B)]
            gains = self.problem.system.input_gain_polys(B.grad())
            abs_terms = [
                (s, gains[j]) for j, s in enumerate(self.sigma_star) if s > 0.0
            ]
            return _ViolationFn(margin_pos, abs_terms, compiled=compiled), self.problem.psi
        raise ValueError(f"unknown condition {condition!r}")

    def _ascend(self, fn: _ViolationFn, region: SemialgebraicSet) -> Tuple[np.ndarray, float]:
        cfg = self.config
        starts = region.sample(cfg.n_starts, rng=self.rng)
        pts = starts.copy()
        lo, hi = region.bounding_box
        scale = float(np.max(hi - lo))
        for step in range(cfg.n_steps):
            g = fn.gradient(pts)
            norms = np.linalg.norm(g, axis=1, keepdims=True)
            norms[norms < 1e-12] = 1.0
            lr = cfg.step_size * scale * (1.0 - 0.9 * step / cfg.n_steps)
            pts = pts + lr * g / norms
            pts = np.clip(pts, lo, hi)
        # keep only feasible points; fall back to the starts (always feasible)
        inside = region.contains(pts, tol=1e-12)
        candidates = np.vstack([pts[inside], starts])
        vals = fn.value(candidates)
        best = int(np.argmax(vals))
        return candidates[best], float(vals[best])

    def _max_radius(
        self, fn: _ViolationFn, region: SemialgebraicSet, center: np.ndarray
    ) -> float:
        """Largest gamma (up to gamma_max) with the violation persisting on
        sampled points of ``ball(center, gamma) cap region`` (problem (17))."""
        cfg = self.config

        def violated_everywhere(radius: float) -> bool:
            direction = self.rng.normal(size=(cfg.gamma_samples, center.shape[0]))
            direction /= np.linalg.norm(direction, axis=1, keepdims=True)
            radii = radius * self.rng.uniform(size=(cfg.gamma_samples, 1)) ** (
                1.0 / center.shape[0]
            )
            pts = center + direction * radii
            pts = pts[region.contains(pts, tol=1e-12)]
            if len(pts) == 0:
                return True  # nothing of the ball is in the region
            return bool(np.all(fn.value(pts) > 0.0))

        lo_r, hi_r = 0.0, cfg.gamma_max * 2.0 ** (-10)
        # grow until violated_everywhere fails or cap reached
        while hi_r < cfg.gamma_max and violated_everywhere(hi_r):
            lo_r = hi_r
            hi_r *= 2.0
        hi_r = min(hi_r, cfg.gamma_max)
        for _ in range(12):  # bisection refinement
            mid = 0.5 * (lo_r + hi_r)
            if violated_everywhere(mid):
                lo_r = mid
            else:
                hi_r = mid
        return lo_r

    def _sample_ball(
        self, region: SemialgebraicSet, center: np.ndarray, gamma: float
    ) -> np.ndarray:
        cfg = self.config
        if gamma <= 0.0:
            return center[None, :]
        pts: List[np.ndarray] = [center[None, :]]
        collected = 1
        for _ in range(50):
            direction = self.rng.normal(size=(cfg.n_points, center.shape[0]))
            direction /= np.linalg.norm(direction, axis=1, keepdims=True)
            radii = gamma * self.rng.uniform(size=(cfg.n_points, 1)) ** (
                1.0 / center.shape[0]
            )
            cand = center + direction * radii
            keep = cand[region.contains(cand, tol=1e-12)]
            if len(keep):
                pts.append(keep)
                collected += len(keep)
            if collected >= cfg.n_points:
                break
        return np.vstack(pts)[: cfg.n_points]

    # ------------------------------------------------------------------
    def generate(
        self,
        B: Polynomial,
        lam: Polynomial,
        conditions: Sequence[str],
    ) -> List[Counterexample]:
        """Counterexamples for each (violated) condition name.

        Conditions whose worst point does not actually violate (violation
        value <= 0, e.g. the SOS certificate failed only numerically) are
        skipped.
        """
        tel = get_telemetry()
        out: List[Counterexample] = []
        for cond in conditions:
            key = "lie" if cond.startswith("lie") else cond
            with tel.span("cex.generate", condition=key) as span:
                fn, region = self._violation_fn(key, B, lam)
                worst, value = self._ascend(fn, region)
                tel.metrics.inc(
                    "cex.ascent_steps", self.config.n_steps * self.config.n_starts
                )
                if value <= 0.0:
                    span.set_attrs(spurious=True, worst_violation=value)
                    tel.metrics.inc("cex.spurious")
                    continue
                gamma = self._max_radius(fn, region, worst)
                points = self._sample_ball(region, worst, gamma)
                span.set_attrs(
                    spurious=False,
                    worst_violation=value,
                    gamma=gamma,
                    n_points=len(points),
                )
                if tel.enabled:
                    tel.metrics.observe("cex.violation", value)
                    tel.metrics.observe("cex.gamma", gamma)
            out.append(
                Counterexample(
                    condition=key,
                    worst_point=worst,
                    worst_violation=value,
                    gamma=gamma,
                    points=points,
                )
            )
        return out
