"""The counterexample-guided synthesis loop (paper §4, Algorithm 1).

* :mod:`repro.cegis.counterexamples` — worst-violation search (16) by
  projected gradient ascent, maximal-radius ball (17), and counterexample
  set sampling;
* :mod:`repro.cegis.snbc` — the SNBC procedure: inclusion -> learn ->
  verify -> counterexample -> retrain, with the per-phase timers reported
  in Table 1 (``T_l``, ``T_c``, ``T_v``, ``T_e``).
"""

from repro.cegis.counterexamples import (
    CexConfig,
    Counterexample,
    CounterexampleGenerator,
)
from repro.cegis.snbc import (
    SNBC,
    CexRecord,
    IterationRecord,
    PhaseTimings,
    SNBCConfig,
    SNBCResult,
)

__all__ = [
    "CounterexampleGenerator",
    "Counterexample",
    "CexConfig",
    "CexRecord",
    "IterationRecord",
    "SNBC",
    "SNBCConfig",
    "SNBCResult",
    "PhaseTimings",
]
