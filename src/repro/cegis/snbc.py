"""SNBC: the full counterexample-guided synthesis procedure (Algorithm 1)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cegis.counterexamples import CexConfig, CounterexampleGenerator
from repro.controllers import NNController, PolynomialInclusion, polynomial_inclusion
from repro.dynamics import CCDS
from repro.learner import BarrierLearner, LearnerConfig, TrainingData
from repro.poly import Polynomial
from repro.resilience import (
    BudgetExhausted,
    LearnerDivergence,
    ReproError,
    TimeBudget,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.sets import Ball, Box
from repro.soundness import (
    SoundnessConfig,
    SoundnessError,
    SoundnessReport,
    check_verification,
)
from repro.telemetry import Telemetry, get_telemetry
from repro.verifier import SOSVerifier, VerificationResult, VerifierConfig


@dataclass
class PhaseTimings:
    """Wall-clock seconds per phase — Table 1's ``T_l``/``T_c``/``T_v``/``T_e``."""

    inclusion: float = 0.0
    learning: float = 0.0
    counterexample: float = 0.0
    verification: float = 0.0

    @property
    def total(self) -> float:
        return self.inclusion + self.learning + self.counterexample + self.verification


#: paper numbering of the three condition families (Theorem 1 (i)-(iii)
#: compiled to sub-problems (13)-(15))
PAPER_CONDITION_NUMBERS = {"init": 13, "unsafe": 14, "lie": 15}


@dataclass
class IterationRecord:
    """Per-CEGIS-round diagnostics.

    ``loss`` is the weighted total of eq. (10); ``loss_init`` /
    ``loss_unsafe`` / ``loss_domain`` are its three condition terms, so a
    run report can show *which* of (13)-(15) the Learner kept fighting.
    ``worst_violation`` is the largest true violation any counterexample
    search found this round (0 when the round failed only numerically),
    and ``dataset_sizes`` records |S_I|, |S_U|, |S_D| after this round's
    counterexamples were appended.
    """

    iteration: int
    loss: float
    verified: bool
    failed_conditions: List[str]
    n_counterexamples: int
    loss_init: float = float("nan")
    loss_unsafe: float = float("nan")
    loss_domain: float = float("nan")
    worst_violation: float = 0.0
    dataset_sizes: Tuple[int, int, int] = (0, 0, 0)

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["dataset_sizes"] = list(self.dataset_sizes)
        return out


@dataclass
class CexRecord:
    """Lineage of one counterexample set: where it came from and whether
    the final certificate satisfies it.

    ``iteration`` is the CEGIS round that generated it, ``condition`` the
    violated family (``init``/``unsafe``/``lie``, i.e. paper conditions
    (13)/(14)/(15)), ``worst_violation`` the violation magnitude at the
    generating round's worst point.  After the loop ends the same point is
    re-evaluated against the final candidate: ``final_violation`` is the
    violation there (<= 0 means resolved) and ``satisfied_by_final`` the
    resulting verdict.
    """

    iteration: int
    condition: str
    paper_condition: int
    worst_violation: float
    gamma: float
    n_points: int
    worst_point: List[float]
    satisfied_by_final: Optional[bool] = None
    final_violation: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class SNBCConfig:
    """Configuration of the SNBC loop."""

    max_iterations: int = 10
    n_samples: int = 500
    inclusion_degree: int = 2
    inclusion_spacing: float = 0.1
    inclusion_max_mesh: int = 20_000
    inclusion_error_mode: str = "lipschitz"
    first_epochs: Optional[int] = None  # defaults to learner.epochs
    retrain_epochs: Optional[int] = None  # defaults to learner.epochs // 2
    #: flag a stall when the worst counterexample violation has not
    #: decreased across this many consecutive failed rounds
    stall_window: int = 3
    #: solve the verifier's condition SDPs (13)-(15) in a process pool
    #: (ignored when an explicit ``verifier_config`` is supplied); the
    #: result is identical to the serial path — see
    #: :attr:`repro.verifier.VerifierConfig.parallel`
    parallel_verify: bool = False
    verify_max_workers: Optional[int] = None
    seed: int = 0
    #: wall-clock deadline for the whole run; an overrun anywhere in the
    #: loop ends cleanly with ``outcome == "timeout"`` (the paper's OOT)
    time_budget_s: Optional[float] = None
    #: per-CEGIS-iteration deadline (same clean ``timeout`` semantics)
    iteration_budget_s: Optional[float] = None
    #: write a resumable checkpoint here after each failed iteration;
    #: ``SNBC.run(resume_from=...)`` continues bit-identically from it
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    #: on :class:`LearnerDivergence`, roll the learner back to its
    #: pre-``fit`` state and retry with extra samples this many times
    #: before surfacing the failure as ``outcome == "error"``
    learner_recovery_attempts: int = 2
    #: re-prove every accepted certificate's Putinar identities over ℚ
    #: (:mod:`repro.soundness.checker`); a rejected recheck turns the run
    #: into ``outcome == "error"`` with a :class:`SoundnessError` — the
    #: loop never reports ``success`` on a certificate the exact checker
    #: refused
    soundness_check: bool = True
    #: overrides for the exact checker (shift ladder, quantization)
    soundness_config: Optional[SoundnessConfig] = None


@dataclass
class SNBCResult:
    """Outcome of :meth:`SNBC.run`."""

    success: bool
    barrier: Optional[Polynomial]
    lambda_poly: Optional[Polynomial]
    iterations: int
    timings: PhaseTimings
    history: List[IterationRecord]
    verification: Optional[VerificationResult]
    inclusion: Optional[PolynomialInclusion]
    problem_name: str = ""
    counterexamples: List[CexRecord] = field(default_factory=list)
    stalled: bool = False
    stall_iteration: Optional[int] = None
    #: ``"verified"`` | ``"not_verified"`` | ``"timeout"`` | ``"error"``
    #: — the first two restate ``success``; the last two classify runs
    #: that ended early (deadline overrun / unrecoverable typed failure)
    outcome: str = ""
    #: :meth:`repro.resilience.ReproError.to_dict` of the failure that
    #: ended the run, for ``timeout``/``error`` outcomes
    error: Optional[Dict[str, Any]] = None
    timed_out: bool = False
    #: iteration the run was resumed from, when ``run(resume_from=...)``
    resumed_from_iteration: Optional[int] = None
    #: exact rational recheck of the accepted certificate (present on
    #: every success when ``SNBCConfig.soundness_check``; also attached —
    #: with ``ok == False`` — when the recheck itself rejected the run)
    soundness: Optional[SoundnessReport] = None

    def __post_init__(self) -> None:
        if not self.outcome:
            self.outcome = "verified" if self.success else "not_verified"

    @property
    def total_time(self) -> float:
        return self.timings.total

    def resolved_counterexamples(self) -> int:
        """How many recorded counterexamples the final candidate satisfies."""
        return sum(1 for c in self.counterexamples if c.satisfied_by_final)


class SNBC:
    """Synthesize a neural barrier certificate for an NN-controlled CCDS.

    The constructor accepts either an :class:`NNController` (its polynomial
    inclusion is computed as phase 0), a precomputed
    :class:`PolynomialInclusion`, or — for autonomous systems — neither.

    >>> result = SNBC(problem, controller=k).run()   # doctest: +SKIP
    >>> result.success, result.barrier               # doctest: +SKIP
    """

    def __init__(
        self,
        problem: CCDS,
        controller: Optional[NNController] = None,
        inclusion: Optional[PolynomialInclusion] = None,
        learner_config: Optional[LearnerConfig] = None,
        verifier_config: Optional[VerifierConfig] = None,
        cex_config: Optional[CexConfig] = None,
        config: Optional[SNBCConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.problem = problem
        self.controller = controller
        self.inclusion = inclusion
        self.config = config or SNBCConfig()
        self.learner_config = learner_config or LearnerConfig(seed=self.config.seed)
        if verifier_config is None:
            # a constant multiplier network (Table 1's "c") means the
            # verifier's free lambda can be constant too, keeping every
            # sub-problem quadratic — decisive for high dimensions
            lam_deg = 0 if self.learner_config.lambda_hidden is None else 1
            verifier_config = VerifierConfig(
                lambda_degree=lam_deg,
                parallel=self.config.parallel_verify,
                max_workers=self.config.verify_max_workers,
            )
        self.verifier_config = verifier_config
        self.cex_config = cex_config or CexConfig(seed=self.config.seed)
        self._telemetry = telemetry
        # One deterministic generator chain: `config.seed` spawns
        # independent child streams for sampling/inclusion, learner
        # initialization, and counterexample ball sampling, so the whole
        # run is reproducible from the single seed regardless of how many
        # draws each component makes.
        children = np.random.SeedSequence(self.config.seed).spawn(3)
        self.rng = np.random.default_rng(children[0])
        self._learner_rng = np.random.default_rng(children[1])
        self._cex_rng = np.random.default_rng(children[2])
        if problem.system.n_inputs > 0 and controller is None and inclusion is None:
            raise ValueError(
                "a controlled system needs a controller or a polynomial inclusion"
            )

    @property
    def telemetry(self) -> Telemetry:
        """Explicit instance if one was injected, else the process default
        (resolved at use time so harness sessions apply)."""
        return self._telemetry or get_telemetry()

    # ------------------------------------------------------------------
    def _ensure_inclusion(self, timings: PhaseTimings) -> None:
        if self.problem.system.n_inputs == 0:
            return
        if self.inclusion is None:
            # meshable domains: boxes, and composites (box minus
            # obstacles) that delegate mesh/effective_spacing to their
            # base box (the Theorem 2 covering argument carries over —
            # only obstacle deep-interior points are thinned)
            if not hasattr(self.problem.psi, "mesh"):
                raise ValueError(
                    "polynomial inclusion needs a meshable domain Psi "
                    "(a Box, or a composite region built on one)"
                )
            with self.telemetry.span(
                "snbc.inclusion", phase="inclusion"
            ) as span:
                self.inclusion = polynomial_inclusion(
                    self.controller,
                    self.problem.psi,
                    degree=self.config.inclusion_degree,
                    spacing=self.config.inclusion_spacing,
                    max_mesh_points=self.config.inclusion_max_mesh,
                    error_mode=self.config.inclusion_error_mode,
                    rng=self.rng,
                )
                span.set_attrs(
                    n_mesh_points=self.inclusion.n_mesh_points,
                    worst_sigma_star=self.inclusion.worst_sigma_star,
                )
            timings.inclusion += span.duration

    def _controller_polys(self) -> Sequence[Polynomial]:
        if self.problem.system.n_inputs == 0:
            return []
        return self.inclusion.polynomials

    def _sigma_star(self) -> Sequence[float]:
        if self.problem.system.n_inputs == 0:
            return []
        return self.inclusion.sigma_star

    # ------------------------------------------------------------------
    def _warm_start(self, learner, field_polys, data: TrainingData) -> None:
        """Initialize ``B`` as ``c - x^T P x`` with Lyapunov ``P`` of the
        closed-loop linearization, when that linearization is Hurwitz and the
        architecture supports it.  Purely an initialization: training and
        verification proceed unchanged."""
        from scipy.linalg import solve_continuous_lyapunov

        net = learner.b_net
        if not hasattr(net, "init_from_quadratic_form"):
            return
        n = self.problem.n_vars
        origin = np.zeros(n)
        A = np.zeros((n, n))
        for i, fi in enumerate(field_polys):
            for j in range(n):
                A[i, j] = fi.diff(j)(origin)
        eigs = np.linalg.eigvals(A)
        if np.max(eigs.real) >= -1e-9:
            return  # not Hurwitz; keep the random initialization
        try:
            P = solve_continuous_lyapunov(A.T, -np.eye(n))
        except (ValueError, np.linalg.LinAlgError) as exc:
            # a singular/ill-conditioned Lyapunov system just means no
            # warm start — keep the random initialization, but say so
            tel = self.telemetry
            tel.metrics.inc("cegis.warm_start.lyapunov_failures")
            tel.event(
                "cegis.warm_start_skipped",
                reason=f"{type(exc).__name__}: {exc}",
            )
            return
        P = 0.5 * (P + P.T)
        if np.linalg.eigvalsh(P)[0] <= 0:
            return
        # A very anisotropic Lyapunov shape may be unable to separate Theta
        # from Xi; blend toward the identity until the circumradius bound on
        # Theta falls below the sampled minimum of x^T P x on Xi.
        P = P / float(np.linalg.eigvalsh(P)[-1])
        theta = self.problem.theta
        if isinstance(theta, Ball):
            radius = float(np.linalg.norm(theta.center) + theta.radius)
        else:
            # exact circumradius of a box: the farthest corner
            lo, hi = theta.bounding_box
            corners = np.maximum(np.abs(lo), np.abs(hi))
            radius = float(np.linalg.norm(corners))
        chosen = None
        for alpha in (0.0, 0.1, 0.2, 0.5, 1.0, 4.0):
            P_try = P + alpha * np.eye(n)
            v_theta = float(np.linalg.eigvalsh(P_try)[-1]) * radius ** 2
            v_xi = float(
                np.min(np.einsum("bi,ij,bj->b", data.s_unsafe, P_try, data.s_unsafe))
            )
            if v_xi > v_theta:
                chosen = (P_try, 0.5 * (v_theta + v_xi))
                break
        if chosen is None:
            P_try = P + np.eye(n)
            v_theta = float(np.linalg.eigvalsh(P_try)[-1]) * radius ** 2
            chosen = (P_try, 1.05 * v_theta)
        try:
            net.init_from_quadratic_form(chosen[0], chosen[1], rng=self.rng)
        except ValueError as exc:
            # multi-layer nets keep their random initialization
            tel = self.telemetry
            tel.metrics.inc("cegis.warm_start.arch_fallbacks")
            tel.event("cegis.warm_start_skipped", reason=str(exc))

    def run(self, resume_from: Optional[str] = None) -> SNBCResult:
        """Execute Algorithm 1 and return the synthesis outcome.

        ``resume_from`` names a checkpoint written by a previous run (see
        :attr:`SNBCConfig.checkpoint_path`); the loop continues from the
        iteration after the checkpoint, bit-identically to an
        uninterrupted run.  Deadline overruns and unrecoverable typed
        failures never raise out of this method — they end the run with
        ``outcome == "timeout"`` / ``"error"`` instead.
        """
        tel = self.telemetry
        with tel.span(
            "snbc.run", problem=self.problem.name, seed=self.config.seed
        ) as run_span:
            result = self._run_inner(tel, resume_from=resume_from)
            run_span.set_attrs(
                success=result.success,
                iterations=result.iterations,
                outcome=result.outcome,
            )
        return result

    def _run_inner(
        self, tel: Telemetry, resume_from: Optional[str] = None
    ) -> SNBCResult:
        cfg = self.config
        timings = PhaseTimings()
        history: List[IterationRecord] = []
        budget = TimeBudget(
            total_s=cfg.time_budget_s, iteration_s=cfg.iteration_budget_s
        )

        verification: Optional[VerificationResult] = None
        soundness: Optional[SoundnessReport] = None
        barrier: Optional[Polynomial] = None
        lam_poly: Optional[Polynomial] = None
        cex_records: List[CexRecord] = []
        cex_gen: Optional[CounterexampleGenerator] = None
        success = False
        iterations_run = 0
        error_info: Optional[Dict[str, Any]] = None
        timed_out = False
        resumed_from: Optional[int] = None

        try:
            budget.check(phase="inclusion")
            tel.status_update(
                phase="inclusion", budget_remaining_s=budget.remaining()
            )
            self._ensure_inclusion(timings)
            h_polys = self._controller_polys()
            sigma = self._sigma_star()
            # The Learner trains the robust Lie margin: nominal loop
            # (w = 0) minus sigma*-weighted input gains, matching the
            # Verifier's endpoint checks.
            field_polys = self.problem.system.closed_loop(h_polys)
            system = self.problem.system
            gain_fields = [
                [system.G[i][j] for i in range(system.n_vars)]
                for j in range(system.n_inputs)
                if len(sigma) > j and sigma[j] > 0.0
            ]
            active_sigma = [s for s in sigma if s > 0.0]

            data = TrainingData.sample(self.problem, cfg.n_samples, rng=self.rng)
            learner = BarrierLearner(
                self.problem.n_vars, self.learner_config, rng=self._learner_rng
            )
            start_iteration = 1
            if resume_from is not None:
                resumed_from = self._restore_checkpoint(
                    resume_from, learner, data, cex_records, history, timings
                )
                start_iteration = resumed_from + 1
                tel.event(
                    "cegis.resume",
                    checkpoint=resume_from,
                    iteration=resumed_from,
                )
                tel.metrics.inc("cegis.resumes")
            elif self.learner_config.warm_start:
                self._warm_start(learner, field_polys, data)
            verifier = SOSVerifier(
                self.problem, h_polys, sigma, config=self.verifier_config
            )
            cex_gen = CounterexampleGenerator(
                self.problem, h_polys, sigma, config=self.cex_config,
                rng=self._cex_rng,
            )

            first_epochs = cfg.first_epochs or self.learner_config.epochs
            retrain_epochs = (
                cfg.retrain_epochs or max(1, self.learner_config.epochs // 2)
            )

            for iteration in range(start_iteration, cfg.max_iterations + 1):
                iterations_run = iteration
                tel.metrics.inc("cegis.iterations")
                budget.start_iteration(iteration)
                budget.check(phase="learning")
                tel.status_update(
                    phase="learning",
                    cegis_iteration=iteration,
                    budget_remaining_s=budget.remaining(),
                )
                with tel.span("snbc.iteration", iteration=iteration) as it_span:
                    with tel.span(
                        "snbc.learning", phase="learning", iteration=iteration
                    ) as sp:
                        epochs = (
                            first_epochs if iteration == 1 else retrain_epochs
                        )
                        terms = self._fit_with_recovery(
                            learner,
                            data,
                            field_polys,
                            epochs,
                            gain_fields,
                            active_sigma,
                            iteration,
                        )
                        sp.set_attrs(epochs=epochs, loss=terms.total)
                    timings.learning += sp.duration
                    tel.metrics.gauge("cegis.loss", terms.total)

                    barrier, lam_poly = learner.candidate()

                    budget.check(phase="verification")
                    tel.status_update(
                        phase="verification",
                        cegis_iteration=iteration,
                        budget_remaining_s=budget.remaining(),
                    )
                    self._apply_sdp_time_limit(budget)
                    with tel.span(
                        "snbc.verification",
                        phase="verification",
                        iteration=iteration,
                    ) as sp:
                        verification = verifier.verify(barrier)
                        sp.set_attrs(
                            ok=verification.ok,
                            failed=verification.failed_conditions(),
                            sdp_convergence={
                                rep.name: rep.sdp_convergence
                                for rep in verification.conditions
                                if getattr(rep, "sdp_convergence", "")
                            },
                        )
                    timings.verification += sp.duration

                    if verification.ok:
                        # the soundness gate: the float verifier's accept
                        # is only provisional until the Putinar identities
                        # re-prove over ℚ; a rejection raises out of the
                        # loop as a typed error (never a silent success),
                        # with the failed report still attached to the
                        # result for postmortems
                        soundness = self._check_soundness(verification)
                        if soundness is not None and not soundness.ok:
                            failed = soundness.failed_conditions()
                            raise SoundnessError(
                                "exact rational recheck rejected the "
                                "float-verified certificate: "
                                + "; ".join(
                                    f"{c.name}: {c.message or 'failed'}"
                                    for c in soundness.conditions
                                    if not c.ok
                                ),
                                failed_conditions=failed,
                                barrier_hash=soundness.barrier_hash,
                            )
                        record = IterationRecord(
                            iteration,
                            terms.total,
                            True,
                            [],
                            0,
                            loss_init=terms.init,
                            loss_unsafe=terms.unsafe,
                            loss_domain=terms.domain,
                            worst_violation=0.0,
                            dataset_sizes=data.sizes(),
                        )
                        history.append(record)
                        it_span.set_attr("verified", True)
                        tel.event("cegis.iteration", **record.to_dict())
                        tel.status_update(
                            force=True,
                            phase="verified",
                            cegis_iteration=iteration,
                        )
                        success = True
                        break

                    budget.check(phase="counterexample")
                    tel.status_update(
                        phase="counterexample",
                        cegis_iteration=iteration,
                        budget_remaining_s=budget.remaining(),
                    )
                    with tel.span(
                        "snbc.counterexample",
                        phase="counterexample",
                        iteration=iteration,
                    ) as sp:
                        failed = verification.failed_conditions()
                        cexs = cex_gen.generate(barrier, lam_poly, failed)
                        n_cex = 0
                        for cex in cexs:
                            n_cex += len(cex.points)
                            if cex.condition == "init":
                                data.add_init(cex.points)
                            elif cex.condition == "unsafe":
                                data.add_unsafe(cex.points)
                            else:
                                data.add_domain(cex.points)
                            cex_records.append(
                                CexRecord(
                                    iteration=iteration,
                                    condition=cex.condition,
                                    paper_condition=PAPER_CONDITION_NUMBERS.get(
                                        cex.condition, 0
                                    ),
                                    worst_violation=float(cex.worst_violation),
                                    gamma=float(cex.gamma),
                                    n_points=len(cex.points),
                                    worst_point=np.asarray(
                                        cex.worst_point, dtype=float
                                    ).tolist(),
                                )
                            )
                        if n_cex == 0:
                            # certificate failed only numerically (no true
                            # violation found): refresh with new random
                            # samples to perturb training
                            extra = TrainingData.sample(
                                self.problem,
                                max(16, cfg.n_samples // 8),
                                rng=self.rng,
                            )
                            data.add_init(extra.s_init)
                            data.add_unsafe(extra.s_unsafe)
                            data.add_domain(extra.s_domain)
                        sp.set_attrs(n_counterexamples=n_cex, failed=failed)
                    timings.counterexample += sp.duration
                    tel.metrics.inc("cegis.counterexamples", n_cex)
                    tel.status_update(
                        cex_new=n_cex,
                        cex_total=int(
                            tel.metrics.counter_value("cegis.counterexamples")
                        ),
                    )
                    it_span.set_attr("verified", False)

                worst = max(
                    (float(c.worst_violation) for c in cexs), default=0.0
                )
                record = IterationRecord(
                    iteration,
                    terms.total,
                    False,
                    failed,
                    n_cex,
                    loss_init=terms.init,
                    loss_unsafe=terms.unsafe,
                    loss_domain=terms.domain,
                    worst_violation=worst,
                    dataset_sizes=data.sizes(),
                )
                history.append(record)
                tel.event("cegis.iteration", **record.to_dict())
                if (
                    cfg.checkpoint_path
                    and iteration % max(1, cfg.checkpoint_every) == 0
                ):
                    self._write_checkpoint(
                        cfg.checkpoint_path,
                        iteration,
                        learner,
                        data,
                        cex_records,
                        history,
                        timings,
                    )
        except BudgetExhausted as exc:
            timed_out = True
            error_info = exc.to_dict()
            tel.metrics.inc("cegis.timeouts")
            tel.event("cegis.timeout", **error_info)
        except ReproError as exc:
            error_info = exc.to_dict()
            tel.metrics.inc("cegis.errors")
            tel.event("cegis.error", **error_info)

        final_lambda = (
            (verification.lambda_poly if verification else None) or lam_poly
        )
        if cex_gen is not None:
            self._finalize_lineage(cex_records, cex_gen, barrier, final_lambda)
        tel.event(
            "cegis.lineage", records=[c.to_dict() for c in cex_records]
        )

        from repro.diagnostics.convergence import detect_stall

        failed_violations = [
            r.worst_violation for r in history if not r.verified
        ]
        stall_idx = detect_stall(failed_violations, window=cfg.stall_window)
        stalled = stall_idx is not None
        stall_iteration: Optional[int] = None
        if stalled:
            failed_iters = [r.iteration for r in history if not r.verified]
            stall_iteration = failed_iters[stall_idx]
            tel.metrics.inc("cegis.stalls")
            tel.event(
                "cegis.stall",
                iteration=stall_iteration,
                window=cfg.stall_window,
            )

        if timed_out:
            outcome = "timeout"
        elif error_info is not None:
            outcome = "error"
        else:
            outcome = "verified" if success else "not_verified"
        return SNBCResult(
            success=success,
            barrier=barrier,
            lambda_poly=final_lambda if success else lam_poly,
            iterations=iterations_run,
            timings=timings,
            history=history,
            verification=verification,
            inclusion=self.inclusion,
            problem_name=self.problem.name,
            counterexamples=cex_records,
            stalled=stalled,
            stall_iteration=stall_iteration,
            outcome=outcome,
            error=error_info,
            timed_out=timed_out,
            resumed_from_iteration=resumed_from,
            soundness=soundness,
        )

    def _check_soundness(
        self, verification: VerificationResult
    ) -> Optional[SoundnessReport]:
        """Exact rational recheck of an accepted verification.  Returns
        ``None`` when the gate is off or no certificate was captured; the
        verdict (including ``ok == False``) is the caller's to act on.
        The recheck's wall-clock lands in the report, not in
        :class:`PhaseTimings` — it is not one of the paper's phases."""
        cfg = self.config
        if not cfg.soundness_check:
            return None
        tel = self.telemetry
        with tel.span("snbc.soundness", phase="soundness") as sp:
            report = check_verification(
                self.problem, verification, config=cfg.soundness_config
            )
            if report is None:
                sp.set_attr("skipped", "no certificate captured")
                return None
            sp.set_attrs(
                ok=report.ok,
                failed=report.failed_conditions(),
                barrier_hash=report.barrier_hash,
            )
        tel.metrics.inc("cegis.soundness_checks")
        if not report.ok:
            tel.metrics.inc("cegis.soundness_failures")
            tel.event(
                "cegis.soundness_rejection",
                failed=report.failed_conditions(),
                barrier_hash=report.barrier_hash,
            )
        return report

    # ------------------------------------------------------------------
    def _fit_with_recovery(
        self,
        learner: BarrierLearner,
        data: TrainingData,
        field_polys: Sequence[Polynomial],
        epochs: int,
        gain_fields: Sequence[Sequence[Polynomial]],
        active_sigma: Sequence[float],
        iteration: int,
    ):
        """Run ``learner.fit``; on :class:`LearnerDivergence` roll the
        learner back to its pre-``fit`` state (``fit`` raises before the
        poisoning step, so the rollback point is finite), append fresh
        random samples, and retry a bounded number of times."""
        tel = self.telemetry
        cfg = self.config
        pre_fit = learner.snapshot()
        attempt = 0
        while True:
            try:
                return learner.fit(
                    data,
                    field_polys,
                    epochs=epochs,
                    gain_fields=gain_fields,
                    sigma_star=active_sigma,
                )
            except LearnerDivergence as exc:
                attempt += 1
                tel.metrics.inc("cegis.learner_recoveries")
                tel.event(
                    "cegis.learner_divergence",
                    iteration=iteration,
                    attempt=attempt,
                    **exc.to_dict(),
                )
                if attempt > cfg.learner_recovery_attempts:
                    raise
                learner.restore(pre_fit)
                extra = TrainingData.sample(
                    self.problem, max(16, cfg.n_samples // 8), rng=self.rng
                )
                data.add_init(extra.s_init)
                data.add_unsafe(extra.s_unsafe)
                data.add_domain(extra.s_domain)

    def _apply_sdp_time_limit(self, budget: TimeBudget) -> None:
        """Cap each verification SDP at the remaining run budget so one
        slow solve cannot blow far past the deadline (the IPM checks the
        limit cooperatively, once per iteration)."""
        remaining = budget.remaining()
        if remaining is None:
            return
        self.verifier_config.sdp_options = dataclasses.replace(
            self.verifier_config.sdp_options,
            time_limit_s=max(0.001, remaining),
        )

    # ------------------------------------------------------------------
    def _write_checkpoint(
        self,
        path: str,
        iteration: int,
        learner: BarrierLearner,
        data: TrainingData,
        cex_records: List[CexRecord],
        history: List[IterationRecord],
        timings: PhaseTimings,
    ) -> None:
        payload = {
            "problem": self.problem.name,
            "seed": self.config.seed,
            "iteration": iteration,
            "learner": learner.snapshot(),
            "data": {
                "s_init": np.asarray(data.s_init, dtype=float).tolist(),
                "s_unsafe": np.asarray(data.s_unsafe, dtype=float).tolist(),
                "s_domain": np.asarray(data.s_domain, dtype=float).tolist(),
            },
            "cex_records": [c.to_dict() for c in cex_records],
            "history": [r.to_dict() for r in history],
            "timings": dataclasses.asdict(timings),
            "rng": {
                "sampling": rng_state(self.rng),
                "learner": rng_state(self._learner_rng),
                "cex": rng_state(self._cex_rng),
            },
        }
        save_checkpoint(path, payload)
        self.telemetry.metrics.inc("cegis.checkpoints")

    def _restore_checkpoint(
        self,
        path: str,
        learner: BarrierLearner,
        data: TrainingData,
        cex_records: List[CexRecord],
        history: List[IterationRecord],
        timings: PhaseTimings,
    ) -> int:
        """Load ``path`` into the freshly-constructed run state; returns
        the iteration the checkpoint was written after.  The caller's
        initial sampling/initialization draws are irrelevant — all three
        RNG streams are restored to their checkpointed states."""
        from repro.resilience import CheckpointError

        doc = load_checkpoint(path)
        if (
            doc.get("problem") != self.problem.name
            or doc.get("seed") != self.config.seed
        ):
            raise CheckpointError(
                f"checkpoint {path} is for problem "
                f"{doc.get('problem')!r} seed {doc.get('seed')!r}, not "
                f"{self.problem.name!r} seed {self.config.seed!r}",
                path=path,
            )
        learner.restore(doc["learner"])
        n = self.problem.n_vars
        d = doc["data"]
        data.s_init = np.asarray(d["s_init"], dtype=float).reshape(-1, n)
        data.s_unsafe = np.asarray(d["s_unsafe"], dtype=float).reshape(-1, n)
        data.s_domain = np.asarray(d["s_domain"], dtype=float).reshape(-1, n)
        cex_records.extend(CexRecord(**c) for c in doc["cex_records"])
        history.extend(
            IterationRecord(
                **{**r, "dataset_sizes": tuple(r["dataset_sizes"])}
            )
            for r in doc["history"]
        )
        for key, value in doc["timings"].items():
            setattr(timings, key, float(value))
        restore_rng(self.rng, doc["rng"]["sampling"])
        restore_rng(self._learner_rng, doc["rng"]["learner"])
        restore_rng(self._cex_rng, doc["rng"]["cex"])
        return int(doc["iteration"])

    def _finalize_lineage(
        self,
        records: List[CexRecord],
        cex_gen: CounterexampleGenerator,
        barrier: Optional[Polynomial],
        lam: Optional[Polynomial],
    ) -> None:
        """Re-evaluate every recorded counterexample's worst point against
        the final candidate: a violation value <= 0 means the point no
        longer breaks its condition (the sign is scale-invariant, so the
        verifier's normalization of ``B`` does not matter)."""
        if barrier is None or not records:
            return
        if lam is None:
            lam = Polynomial.zero(barrier.n_vars)
        fns: Dict[str, Any] = {}
        for rec in records:
            pair = fns.get(rec.condition)
            if pair is None:
                pair = cex_gen._violation_fn(rec.condition, barrier, lam)
                fns[rec.condition] = pair
            fn, _region = pair
            value = float(fn.value(np.asarray([rec.worst_point], dtype=float))[0])
            rec.final_violation = value
            rec.satisfied_by_final = bool(value <= 0.0)
