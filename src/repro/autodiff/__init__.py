"""A minimal reverse-mode automatic differentiation engine on numpy.

Stands in for PyTorch in the Learner.  Only first-order gradients are
supported; the Lie-derivative term of the barrier loss — which in a torch
implementation needs grad-of-grad — is instead computed by an explicit
tangent-propagation forward pass through the quadratic network (see
:meth:`repro.nn.quadratic.QuadraticNetwork.forward_with_tangent`), so
first-order reverse mode suffices for the whole training pipeline.
"""

from repro.autodiff.tape import Tape, TapeUnsupportedOp
from repro.autodiff.tensor import Tensor, no_grad

__all__ = ["Tape", "TapeUnsupportedOp", "Tensor", "no_grad"]
