"""Trace-and-replay execution of autodiff graphs.

The Learner rebuilds an *identical* Tensor graph every epoch: same ops,
same shapes, same constant leaves — only the Parameter values change
between Adam steps.  :class:`Tape` captures the graph once (after one
normal forward pass) and replays forward + backward against the captured
node objects, skipping per-epoch graph construction, backward-closure
allocation, and the recursive topological sort.

Replay is bitwise-identical to rebuilding the graph from scratch:

* forward recomputes every gradient-carrying node with the exact numpy
  expression its op method uses, walking the same topological order
  ``Tensor.backward()`` derives;
* backward mirrors each op's closure formula (reading *fresh* output
  data where closures capture it) and accumulates gradient contributions
  through ``Tensor._accumulate`` in the same reverse-topological order,
  so every float add happens in the same sequence.

Ops outside the replay table raise :class:`TapeUnsupportedOp` at capture
time; callers fall back to the per-epoch graph path.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, _unbroadcast


class TapeUnsupportedOp(RuntimeError):
    """Raised when a traced graph contains an op the tape cannot replay."""


# ---------------------------------------------------------------------------
# forward replay: node -> recompute node.data from its parents' data.
# Each body is the literal numpy expression of the corresponding op method.
# ---------------------------------------------------------------------------

def _f_add(t):
    a, b = t._parents
    t.data = a.data + b.data


def _f_neg(t):
    t.data = -t._parents[0].data


def _f_mul(t):
    a, b = t._parents
    t.data = a.data * b.data


def _f_div(t):
    a, b = t._parents
    t.data = a.data / b.data


def _f_pow(t):
    t.data = t._parents[0].data ** t._args[0]


def _f_matmul(t):
    a, b = t._parents
    t.data = a.data @ b.data


def _f_sum(t):
    axis, keepdims = t._args
    t.data = np.asarray(t._parents[0].data.sum(axis=axis, keepdims=keepdims))


def _f_tanh(t):
    t.data = np.tanh(t._parents[0].data)


def _f_sigmoid(t):
    t.data = 1.0 / (1.0 + np.exp(-t._parents[0].data))


def _f_relu(t):
    t.data = np.maximum(t._parents[0].data, 0.0)


def _f_leaky_relu(t):
    x = t._parents[0].data
    t.data = np.where(x > 0.0, x, t._args[0] * x)


def _f_exp(t):
    t.data = np.exp(t._parents[0].data)


def _f_abs(t):
    t.data = np.abs(t._parents[0].data)


def _f_maximum(t):
    a, b = t._parents
    t.data = np.maximum(a.data, b.data)


def _f_cat(t):
    t.data = np.concatenate([p.data for p in t._parents], axis=t._args[0])


def _f_reshape(t):
    t.data = t._parents[0].data.reshape(*t._args[0])


def _f_transpose(t):
    t.data = t._parents[0].data.T


# ---------------------------------------------------------------------------
# backward replay: node, grad -> accumulate into parents.  Each body
# mirrors the corresponding backward closure; where a closure captures
# ``out_data`` we read ``t.data`` (fresh from the forward replay), which
# is exactly what a rebuilt closure would have captured.
# ---------------------------------------------------------------------------

def _b_add(t, g):
    a, b = t._parents
    if a.requires_grad:
        a._accumulate(_unbroadcast(g, a.data.shape))
    if b.requires_grad:
        b._accumulate(_unbroadcast(g, b.data.shape))


def _b_neg(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(-g)


def _b_mul(t, g):
    a, b = t._parents
    if a.requires_grad:
        a._accumulate(_unbroadcast(g * b.data, a.data.shape))
    if b.requires_grad:
        b._accumulate(_unbroadcast(g * a.data, b.data.shape))


def _b_div(t, g):
    a, b = t._parents
    if a.requires_grad:
        a._accumulate(_unbroadcast(g / b.data, a.data.shape))
    if b.requires_grad:
        b._accumulate(_unbroadcast(-g * a.data / (b.data ** 2), b.data.shape))


def _b_pow(t, g):
    a = t._parents[0]
    exponent = t._args[0]
    if a.requires_grad:
        a._accumulate(g * exponent * a.data ** (exponent - 1))


def _b_matmul(t, g):
    a, b = t._parents
    if a.requires_grad:
        if b.data.ndim == 1:
            a._accumulate(np.outer(g, b.data) if a.data.ndim == 2 else g * b.data)
        else:
            gg = g[..., None, :] if g.ndim == t.data.ndim - 1 else g
            a._accumulate(_unbroadcast(gg @ b.data.swapaxes(-1, -2), a.data.shape))
    if b.requires_grad:
        if a.data.ndim == 1:
            b._accumulate(np.outer(a.data, g) if b.data.ndim == 2 else a.data * g)
        else:
            b._accumulate(_unbroadcast(a.data.swapaxes(-1, -2) @ g, b.data.shape))


def _b_sum(t, g):
    a = t._parents[0]
    if not a.requires_grad:
        return
    axis, keepdims = t._args
    g_arr = np.asarray(g)
    if axis is not None and not keepdims:
        g_arr = np.expand_dims(g_arr, axis)
    a._accumulate(np.broadcast_to(g_arr, a.data.shape).copy())


def _b_tanh(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g * (1.0 - t.data ** 2))


def _b_sigmoid(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g * t.data * (1.0 - t.data))


def _b_relu(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g * (a.data > 0.0))


def _b_leaky_relu(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g * np.where(a.data > 0.0, 1.0, t._args[0]))


def _b_exp(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g * t.data)


def _b_abs(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g * np.sign(a.data))


def _b_maximum(t, g):
    a, b = t._parents
    mask = a.data >= b.data
    if a.requires_grad:
        a._accumulate(_unbroadcast(g * mask, a.data.shape))
    if b.requires_grad:
        b._accumulate(_unbroadcast(g * (~mask), b.data.shape))


def _b_cat(t, g):
    axis = t._args[0]
    start = 0
    for p in t._parents:
        stop = start + p.data.shape[axis]
        if p.requires_grad:
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(start, stop)
            p._accumulate(g[tuple(sl)])
        start = stop


def _b_reshape(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g.reshape(a.data.shape))


def _b_transpose(t, g):
    a = t._parents[0]
    if a.requires_grad:
        a._accumulate(g.T)


def _specialized_backward(t):
    """Capture-time specialization of the hottest backward rules.

    Parent shapes, ndims and ``requires_grad`` flags never change across
    replays, so identity ``_unbroadcast`` calls and dead branches can be
    resolved once instead of per replay.  Every specialized body runs the
    exact numpy expression the generic rule would reach, so replay stays
    bitwise-identical; returns ``None`` when no specialization applies.
    """
    op, parents = t._op, t._parents
    if op == "add":
        a, b = parents
        if (a.requires_grad and b.requires_grad
                and a.data.shape == t.data.shape
                and b.data.shape == t.data.shape):
            def bwd(t, g, a=a, b=b):
                a._accumulate(g)
                b._accumulate(g)
            return bwd
    elif op == "mul":
        a, b = parents
        same_a = a.data.shape == t.data.shape
        same_b = b.data.shape == t.data.shape
        if a.requires_grad and same_a and not b.requires_grad:
            def bwd(t, g, a=a, b=b):
                a._accumulate(g * b.data)
            return bwd
        if b.requires_grad and same_b and not a.requires_grad:
            def bwd(t, g, a=a, b=b):
                b._accumulate(g * a.data)
            return bwd
        if a.requires_grad and b.requires_grad and same_a and same_b:
            def bwd(t, g, a=a, b=b):
                a._accumulate(g * b.data)
                b._accumulate(g * a.data)
            return bwd
    elif op == "matmul":
        a, b = parents
        # g always has t's shape, so for the plain 2D @ 2D / 2D @ 1D
        # cases both _unbroadcast calls are identities
        if a.data.ndim == 2 and b.data.ndim == 2:
            if a.requires_grad and b.requires_grad:
                def bwd(t, g, a=a, b=b):
                    a._accumulate(g @ b.data.swapaxes(-1, -2))
                    b._accumulate(a.data.swapaxes(-1, -2) @ g)
                return bwd
            if a.requires_grad:
                def bwd(t, g, a=a, b=b):
                    a._accumulate(g @ b.data.swapaxes(-1, -2))
                return bwd
            if b.requires_grad:
                def bwd(t, g, a=a, b=b):
                    b._accumulate(a.data.swapaxes(-1, -2) @ g)
                return bwd
        if a.data.ndim == 2 and b.data.ndim == 1:
            if a.requires_grad and b.requires_grad:
                def bwd(t, g, a=a, b=b):
                    a._accumulate(np.outer(g, b.data))
                    b._accumulate(a.data.swapaxes(-1, -2) @ g)
                return bwd
            if a.requires_grad:
                def bwd(t, g, a=a, b=b):
                    a._accumulate(np.outer(g, b.data))
                return bwd
            if b.requires_grad:
                def bwd(t, g, a=a, b=b):
                    b._accumulate(a.data.swapaxes(-1, -2) @ g)
                return bwd
    return None


_FORWARD = {
    "add": _f_add, "neg": _f_neg, "mul": _f_mul, "div": _f_div,
    "pow": _f_pow, "matmul": _f_matmul, "sum": _f_sum, "tanh": _f_tanh,
    "sigmoid": _f_sigmoid, "relu": _f_relu, "leaky_relu": _f_leaky_relu,
    "exp": _f_exp, "abs": _f_abs, "maximum": _f_maximum, "cat": _f_cat,
    "reshape": _f_reshape, "T": _f_transpose,
}

_BACKWARD = {
    "add": _b_add, "neg": _b_neg, "mul": _b_mul, "div": _b_div,
    "pow": _b_pow, "matmul": _b_matmul, "sum": _b_sum, "tanh": _b_tanh,
    "sigmoid": _b_sigmoid, "relu": _b_relu, "leaky_relu": _b_leaky_relu,
    "exp": _b_exp, "abs": _b_abs, "maximum": _b_maximum, "cat": _b_cat,
    "reshape": _b_reshape, "T": _b_transpose,
}


class Tape:
    """Replayable capture of the gradient-carrying subgraph under ``output``.

    ``Tape(loss)`` captures after a normal forward pass built the graph;
    ``tape.run()`` then recomputes every node's ``data`` from the current
    leaf values (Parameters included) and reruns backward, leaving fresh
    gradients on the leaves — identical, float for float, to rebuilding
    the graph and calling ``loss.backward()``.
    """

    def __init__(self, output: Tensor):
        if not output.requires_grad:
            raise TapeUnsupportedOp("output does not require grad")
        if output.data.size != 1:
            raise TapeUnsupportedOp("tape replay needs a scalar output")
        topo: List[Tensor] = []
        visited = set()

        # same traversal as Tensor.backward() so replay order matches
        def visit(t: Tensor) -> None:
            if id(t) in visited or not t.requires_grad:
                return
            visited.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(output)
        for t in topo:
            if t._op is None:
                if t._parents:
                    raise TapeUnsupportedOp(
                        "graph contains an op node without replay metadata"
                    )
            elif t._op not in _FORWARD:
                raise TapeUnsupportedOp(f"op {t._op!r} has no replay rule")
        self.output = output
        self.nodes = topo
        self.leaves = [t for t in topo if t._op is None]
        self._interior = [
            (t, _FORWARD[t._op],
             _specialized_backward(t) or _BACKWARD[t._op])
            for t in topo if t._op is not None
        ]

    # ------------------------------------------------------------------
    def run(self) -> Tensor:
        """One forward + backward replay; returns the output tensor."""
        interior = self._interior
        for t, fwd, _ in interior:
            fwd(t)
        for t in self.nodes:
            t.grad = None
        out = self.output
        out.grad = np.ones_like(out.data)
        for t, _, bwd in reversed(interior):
            if t.grad is not None:
                bwd(t, t.grad)
        return out


def watched_values(tensors: Sequence[Tensor]) -> List[float]:
    """Scalar values of watched nodes after a replay (logging helper)."""
    return [t.item() for t in tensors]
