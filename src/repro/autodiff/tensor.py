"""Reverse-mode autodiff tensors.

Supports the operation set needed by the SNBC Learner: elementwise
arithmetic with numpy broadcasting, matrix multiplication, reductions, and
the activation functions from the paper (tanh, ReLU, LeakyReLU, sigmoid,
and the Hadamard product of the quadratic network).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (fast inference)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum over leading broadcast axes
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure.

    Every op node additionally records its op name and static op
    arguments (``_op``/``_args``) so a traced graph can be replayed by
    :class:`repro.autodiff.tape.Tape` without rebuilding it.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_op", "_args")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        self.data = np.asarray(data, dtype=float)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward
        self._op: Optional[str] = None
        self._args: tuple = ()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data, parents, backward, op=None, args=()) -> "Tensor":
        # hot path: ops always hand in freshly computed float arrays, so
        # skip Tensor.__init__'s asarray round-trip and flag plumbing
        out = Tensor.__new__(Tensor)
        out.data = data if isinstance(data, np.ndarray) else np.asarray(data, dtype=float)
        out.grad = None
        requires = False
        for p in parents:
            if p.requires_grad:
                requires = True
                break
        if requires and _GRAD_ENABLED[-1]:
            out.requires_grad = True
            out._parents = parents
        else:
            out.requires_grad = False
            out._parents = ()
        out._backward = backward
        out._op = op
        out._args = args
        return out

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward, "add")

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                self._accumulate(-g)

        return self._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self.__add__(self._lift(other).__neg__())

    def __rsub__(self, other) -> "Tensor":
        return self.__neg__().__add__(other)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(out_data, (self, other), backward, "mul")

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data ** 2), other.shape)
                )

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow", (exponent,))

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(g):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(g, other.data) if self.data.ndim == 2 else g * other.data)
                else:
                    gg = g[..., None, :] if g.ndim == out_data.ndim - 1 else g
                    self._accumulate(_unbroadcast(gg @ other.data.swapaxes(-1, -2), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, g) if other.data.ndim == 2 else self.data * g)
                else:
                    other._accumulate(
                        _unbroadcast(self.data.swapaxes(-1, -2) @ g, other.shape)
                    )

        return self._make(out_data, (self, other), backward, "matmul")

    # -- reductions -----------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            g_arr = np.asarray(g)
            if axis is not None and not keepdims:
                g_arr = np.expand_dims(g_arr, axis)
            self._accumulate(np.broadcast_to(g_arr, self.shape).copy())

        return self._make(out_data, (self,), backward, "sum", (axis, keepdims))

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities ---------------------------------------------------
    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (self.data > 0.0))

        return self._make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * np.where(self.data > 0.0, 1.0, negative_slope))

        return self._make(out_data, (self,), backward, "leaky_relu", (negative_slope,))

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data))

        return self._make(out_data, (self,), backward, "abs")

    def maximum(self, other) -> "Tensor":
        """Elementwise max; gradient flows to the winning branch."""
        other = self._lift(other)
        out_data = np.maximum(self.data, other.data)

        def backward(g):
            mask = self.data >= other.data
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * mask, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * (~mask), other.shape))

        return self._make(out_data, (self, other), backward, "maximum")

    @staticmethod
    def cat(tensors: List["Tensor"], axis: int = 1) -> "Tensor":
        """Concatenate tensors along an axis (gradient splits back)."""
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.concatenate([[0], np.cumsum(sizes)])

        def backward(g):
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[axis] = slice(int(start), int(stop))
                    t._accumulate(g[tuple(sl)])

        requires = any(t.requires_grad for t in tensors)
        out = Tensor(
            out_data,
            requires_grad=requires,
            _parents=tuple(tensors),
            _backward=backward,
        )
        out._op = "cat"
        out._args = (axis,)
        return out

    def reshape(self, *shape) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.reshape(self.shape))

        return self._make(out_data, (self,), backward, "reshape", (shape,))

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.T)

        return self._make(out_data, (self,), backward, "T")

    # ------------------------------------------------------------------
    def _accumulate(self, g: np.ndarray) -> None:
        # contributions are freshly computed arrays that no caller mutates
        # in place (Adam reassigns .data/.grad, never writes into them),
        # so aliasing them into .grad is safe and skips a copy per call
        if not isinstance(g, np.ndarray):
            g = np.asarray(g, dtype=float)
        shape = self.data.shape
        if self.grad is None:
            self.grad = g if g.shape == shape else _unbroadcast(g, shape)
        else:
            self.grad = self.grad + (_unbroadcast(g, shape) if g.shape != shape else g)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient needs a scalar output")
            grad = np.ones_like(self.data)
        # topological order
        topo: List[Tensor] = []
        visited = set()

        def visit(t: "Tensor") -> None:
            if id(t) in visited or not t.requires_grad:
                return
            visited.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=float))
        for t in reversed(topo):
            if t._backward is not None and t.grad is not None:
                t._backward(t.grad)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"
