"""Independent soundness layer: exact-arithmetic certificate checking,
differential oracles, and property-based generators.

Import discipline: ``repro.verifier`` imports the capture dataclasses
from :mod:`repro.soundness.certificate`, so this package's eager exports
must never import ``repro.verifier`` back.  The differential oracles
(:mod:`repro.soundness.oracles`) *do* import the verifiers — import them
explicitly, never from here.
"""

from repro.soundness.certificate import (
    CertificateBundle,
    ConditionCertificate,
    MultiplierCertificate,
)
from repro.soundness.checker import (
    SOUNDNESS_SCHEMA_VERSION,
    ConditionSoundness,
    SoundnessConfig,
    SoundnessError,
    SoundnessReport,
    barrier_fingerprint,
    check_certificate,
    check_verification,
)
from repro.soundness.serialize import (
    bundle_from_dict,
    bundle_to_dict,
    poly_from_dict,
    poly_to_dict,
)
from repro.soundness.rational import (
    DEFAULT_DELTA_LADDER,
    RationalPolynomial,
    basis_square_bound,
    find_psd_shift,
    gram_polynomial,
    ldlt_psd,
    rational_closed_loop,
    rational_lie_derivative,
    rationalize_matrix,
)

__all__ = [
    "CertificateBundle",
    "ConditionCertificate",
    "MultiplierCertificate",
    "SOUNDNESS_SCHEMA_VERSION",
    "ConditionSoundness",
    "SoundnessConfig",
    "SoundnessError",
    "SoundnessReport",
    "barrier_fingerprint",
    "bundle_from_dict",
    "bundle_to_dict",
    "check_certificate",
    "check_verification",
    "poly_from_dict",
    "poly_to_dict",
    "DEFAULT_DELTA_LADDER",
    "RationalPolynomial",
    "basis_square_bound",
    "find_psd_shift",
    "gram_polynomial",
    "ldlt_psd",
    "rational_closed_loop",
    "rational_lie_derivative",
    "rationalize_matrix",
]
