"""Exact rational polynomial arithmetic and PSD certification over ℚ.

Everything in this module computes with :class:`fractions.Fraction` —
no floats anywhere past the constructors.  The two facts that make an
exact a-posteriori certificate check possible:

* every IEEE-754 double is a dyadic rational, so ``Fraction(float)`` is
  a *lossless* embedding of the solver's output into ℚ;
* positive semidefiniteness of a rational symmetric matrix is decidable
  by a pivoted LDLᵀ elimination whose pivots are exact rationals
  (:func:`ldlt_psd`): the matrix is PSD iff the elimination never meets
  a negative pivot and every zero pivot heads an all-zero trailing
  block.

On top of those, :class:`RationalPolynomial` mirrors the float
:class:`repro.poly.Polynomial` API closely enough to recompute the
Putinar identities (13)-(15) symbolically (see
:mod:`repro.soundness.checker`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.poly.monomials import Exponent, add_exponents, grlex_key
from repro.poly.polynomial import Polynomial

RationalLike = Union[int, Fraction]

#: dyadic diagonal shifts tried (smallest first) to restore PSD-ness of a
#: near-singular Gram matrix; each is charged against the strictness
#: margin through the basis bound (see ``checker``)
DEFAULT_DELTA_LADDER: Tuple[Fraction, ...] = tuple(
    Fraction(1, 2 ** k) for k in (60, 52, 44, 36, 30, 24, 18, 12)
)


def _as_fraction(value) -> Fraction:
    """Exact embedding of ints/floats/Fractions into ℚ."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(float(value))


class RationalPolynomial:
    """A sparse multivariate polynomial over ℚ (immutable by convention)."""

    __slots__ = ("n_vars", "coeffs")

    def __init__(
        self,
        n_vars: int,
        coeffs: Optional[Mapping[Exponent, RationalLike]] = None,
    ):
        if n_vars < 1:
            raise ValueError("a polynomial needs at least one variable")
        self.n_vars = int(n_vars)
        cleaned: Dict[Exponent, Fraction] = {}
        if coeffs:
            for alpha, c in coeffs.items():
                alpha = tuple(int(a) for a in alpha)
                if len(alpha) != n_vars:
                    raise ValueError(
                        f"exponent {alpha} has {len(alpha)} entries, "
                        f"expected {n_vars}"
                    )
                c = _as_fraction(c)
                if c != 0:
                    cleaned[alpha] = cleaned.get(alpha, Fraction(0)) + c
        self.coeffs = {a: c for a, c in cleaned.items() if c != 0}

    # ------------------------------------------------------------------
    @classmethod
    def from_polynomial(
        cls, p: Polynomial, max_denominator: Optional[int] = None
    ) -> "RationalPolynomial":
        """Embed a float polynomial into ℚ.

        Without ``max_denominator`` the embedding is exact (doubles are
        dyadic rationals); with it, every coefficient is quantized via
        ``Fraction.limit_denominator`` — the quantization error then
        lands in the residual the checker absorbs, so exactness of the
        final identity is unaffected.
        """
        coeffs: Dict[Exponent, Fraction] = {}
        for alpha, c in p.coeffs.items():
            f = Fraction(c)
            if max_denominator is not None:
                f = f.limit_denominator(max_denominator)
            coeffs[alpha] = f
        return cls(p.n_vars, coeffs)

    @classmethod
    def zero(cls, n_vars: int) -> "RationalPolynomial":
        return cls(n_vars, {})

    @classmethod
    def constant(cls, n_vars: int, value: RationalLike) -> "RationalPolynomial":
        return cls(n_vars, {(0,) * n_vars: _as_fraction(value)})

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        if not self.coeffs:
            return 0
        return max(sum(alpha) for alpha in self.coeffs)

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    def coeff(self, alpha: Exponent) -> Fraction:
        return self.coeffs.get(tuple(alpha), Fraction(0))

    def support(self) -> Tuple[Exponent, ...]:
        return tuple(sorted(self.coeffs, key=grlex_key))

    # ------------------------------------------------------------------
    def __add__(self, other) -> "RationalPolynomial":
        if isinstance(other, (int, Fraction)):
            other = RationalPolynomial.constant(self.n_vars, other)
        if not isinstance(other, RationalPolynomial):
            return NotImplemented
        if self.n_vars != other.n_vars:
            raise ValueError("variable count mismatch")
        coeffs = dict(self.coeffs)
        for alpha, c in other.coeffs.items():
            coeffs[alpha] = coeffs.get(alpha, Fraction(0)) + c
        return RationalPolynomial(self.n_vars, coeffs)

    __radd__ = __add__

    def __neg__(self) -> "RationalPolynomial":
        return RationalPolynomial(
            self.n_vars, {a: -c for a, c in self.coeffs.items()}
        )

    def __sub__(self, other) -> "RationalPolynomial":
        if isinstance(other, (int, Fraction)):
            other = RationalPolynomial.constant(self.n_vars, other)
        if not isinstance(other, RationalPolynomial):
            return NotImplemented
        return self.__add__(-other)

    def __rsub__(self, other) -> "RationalPolynomial":
        return (-self).__add__(other)

    def __mul__(self, other) -> "RationalPolynomial":
        if isinstance(other, (int, Fraction)):
            f = _as_fraction(other)
            return RationalPolynomial(
                self.n_vars, {a: c * f for a, c in self.coeffs.items()}
            )
        if not isinstance(other, RationalPolynomial):
            return NotImplemented
        if self.n_vars != other.n_vars:
            raise ValueError("variable count mismatch")
        coeffs: Dict[Exponent, Fraction] = {}
        for a1, c1 in self.coeffs.items():
            for a2, c2 in other.coeffs.items():
                alpha = add_exponents(a1, a2)
                coeffs[alpha] = coeffs.get(alpha, Fraction(0)) + c1 * c2
        return RationalPolynomial(self.n_vars, coeffs)

    __rmul__ = __mul__

    def diff(self, index: int) -> "RationalPolynomial":
        if not 0 <= index < self.n_vars:
            raise ValueError(f"variable index {index} out of range")
        coeffs: Dict[Exponent, Fraction] = {}
        for alpha, c in self.coeffs.items():
            a = alpha[index]
            if a == 0:
                continue
            beta = tuple(
                ai - 1 if i == index else ai for i, ai in enumerate(alpha)
            )
            coeffs[beta] = coeffs.get(beta, Fraction(0)) + c * a
        return RationalPolynomial(self.n_vars, coeffs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RationalPolynomial):
            return NotImplemented
        return self.n_vars == other.n_vars and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.n_vars, frozenset(self.coeffs.items())))

    def to_polynomial(self) -> Polynomial:
        """Nearest float polynomial (for reporting only — lossy)."""
        return Polynomial(
            self.n_vars, {a: float(c) for a, c in self.coeffs.items()}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RationalPolynomial(n_vars={self.n_vars}, {self.coeffs!r})"


# ----------------------------------------------------------------------
# field / Lie-derivative helpers
# ----------------------------------------------------------------------
def rational_lie_derivative(
    B: RationalPolynomial, field: Sequence[RationalPolynomial]
) -> RationalPolynomial:
    """Exact ``L_f B = sum_i dB/dx_i * f_i`` over ℚ."""
    if len(field) != B.n_vars:
        raise ValueError("field dimension mismatch")
    out = RationalPolynomial.zero(B.n_vars)
    for i, fi in enumerate(field):
        out = out + B.diff(i) * fi
    return out


def rational_closed_loop(
    system,
    controller_polys: Sequence[Polynomial],
    error: Sequence[float],
    max_denominator: Optional[int] = None,
) -> List[RationalPolynomial]:
    """Exact closed-loop field ``f0 + G (h + w)`` over ℚ, recomputed from
    the system's own polynomials (independent of the float pipeline)."""
    h = [
        RationalPolynomial.from_polynomial(p, max_denominator)
        for p in controller_polys
    ]
    w = [_as_fraction(float(e)) for e in error]
    if system.n_inputs and len(h) != system.n_inputs:
        raise ValueError("controller polynomial count mismatch")
    out: List[RationalPolynomial] = []
    for i in range(system.n_vars):
        fi = RationalPolynomial.from_polynomial(system.f0[i], max_denominator)
        for j in range(system.n_inputs):
            Gij = RationalPolynomial.from_polynomial(
                system.G[i][j], max_denominator
            )
            fi = fi + Gij * (h[j] + RationalPolynomial.constant(
                system.n_vars, w[j]
            ))
        out.append(fi)
    return out


# ----------------------------------------------------------------------
# Gram matrices over ℚ
# ----------------------------------------------------------------------
RationalMatrix = List[List[Fraction]]


def rationalize_matrix(
    Q, max_denominator: Optional[int] = None
) -> RationalMatrix:
    """Symmetrized exact (or quantized) embedding of a float matrix."""
    n = len(Q)
    out: RationalMatrix = [[Fraction(0)] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            # symmetrize exactly: the IPM returns numerically-symmetric
            # matrices, but only the average is guaranteed symmetric in ℚ
            f = (Fraction(float(Q[i][j])) + Fraction(float(Q[j][i]))) / 2
            if max_denominator is not None:
                f = f.limit_denominator(max_denominator)
            out[i][j] = f
            out[j][i] = f
    return out


def shift_diagonal(Q: RationalMatrix, delta: Fraction) -> RationalMatrix:
    """``Q + delta * I`` (fresh copy)."""
    n = len(Q)
    out = [row[:] for row in Q]
    for i in range(n):
        out[i][i] = out[i][i] + delta
    return out


def gram_polynomial(
    basis: Sequence[Exponent], Q: RationalMatrix, n_vars: int
) -> RationalPolynomial:
    """Exact expansion of ``m(x)^T Q m(x)`` over ℚ."""
    coeffs: Dict[Exponent, Fraction] = {}
    for i, bi in enumerate(basis):
        row = Q[i]
        for j, bj in enumerate(basis):
            q = row[j]
            if q == 0:
                continue
            alpha = add_exponents(bi, bj)
            coeffs[alpha] = coeffs.get(alpha, Fraction(0)) + q
    return RationalPolynomial(n_vars, coeffs)


def ldlt_psd(Q: RationalMatrix) -> bool:
    """Exact PSD decision for a symmetric rational matrix.

    Symmetric Gaussian elimination with greatest-diagonal pivoting:

    * a negative maximal diagonal pivot disproves PSD-ness;
    * a zero maximal diagonal pivot requires the whole trailing block to
      vanish (a PSD matrix with ``Q_ii = 0`` has zero row/column ``i``);
    * completing all eliminations with positive pivots proves
      ``Q = L D Lᵀ`` with ``D >= 0``, hence PSD.

    Everything is exact — no tolerance anywhere.
    """
    n = len(Q)
    A = [row[:] for row in Q]
    for k in range(n):
        p = k
        for i in range(k + 1, n):
            if A[i][i] > A[p][p]:
                p = i
        if A[p][p] < 0:
            return False
        if A[p][p] == 0:
            # the largest remaining diagonal is zero: PSD iff the whole
            # trailing block is exactly zero
            for i in range(k, n):
                for j in range(k, n):
                    if A[i][j] != 0:
                        return False
            return True
        if p != k:
            A[k], A[p] = A[p], A[k]
            for row in A:
                row[k], row[p] = row[p], row[k]
        d = A[k][k]
        for i in range(k + 1, n):
            aik = A[i][k]
            if aik == 0:
                continue
            f = aik / d
            row_i, row_k = A[i], A[k]
            for j in range(k + 1, n):
                if row_k[j] != 0:
                    row_i[j] = row_i[j] - f * row_k[j]
    return True


def _float_min_eig(Q: RationalMatrix) -> float:
    """Cheap float estimate of the smallest eigenvalue, used only to pick
    a starting point in the shift ladder (the LDLᵀ decision stays exact)."""
    try:  # numpy is a hard dependency of the repo, but stay defensive
        import numpy as np

        M = np.array([[float(x) for x in row] for row in Q], dtype=float)
        return float(np.linalg.eigvalsh(M)[0])
    except Exception:  # pragma: no cover - numpy always available
        return float("-inf")


def find_psd_shift(
    Q: RationalMatrix,
    ladder: Sequence[Fraction] = DEFAULT_DELTA_LADDER,
) -> Optional[Fraction]:
    """Smallest shift ``delta`` in ``{0} ∪ ladder`` with ``Q + delta I``
    exactly PSD, or ``None`` when even the largest rung fails.

    A float eigenvalue estimate skips ladder rungs that obviously cannot
    work; the accepted rung is always certified by exact LDLᵀ.
    """
    if ldlt_psd(Q):
        return Fraction(0)
    min_eig = _float_min_eig(Q)
    for delta in sorted(ladder):
        # a shift below ~|min eig| cannot restore PSD-ness; the float
        # screen only ever *skips* rungs, acceptance is exact
        if min_eig < 0 and float(delta) < -min_eig * 0.5:
            continue
        if ldlt_psd(shift_diagonal(Q, delta)):
            return delta
    return None


# ----------------------------------------------------------------------
# box bounds over ℚ
# ----------------------------------------------------------------------
def monomial_box_bound(
    alpha: Exponent, lo: Sequence[float], hi: Sequence[float]
) -> Fraction:
    """Exact bound ``max |x^alpha|`` over the box, via
    ``prod_i max(|lo_i|, |hi_i|)^alpha_i``."""
    out = Fraction(1)
    for a, l, h in zip(alpha, lo, hi):
        if a:
            m = max(abs(_as_fraction(float(l))), abs(_as_fraction(float(h))))
            out *= m ** a
    return out


def basis_square_bound(
    basis: Iterable[Exponent], lo: Sequence[float], hi: Sequence[float]
) -> Fraction:
    """Exact bound ``S >= max_x sum_k m_k(x)^2`` over the box — the price
    of a diagonal Gram shift: ``m^T (Q + delta I) m <= m^T Q m + delta S``."""
    total = Fraction(0)
    for beta in basis:
        total += monomial_box_bound(tuple(2 * b for b in beta), lo, hi)
    return total
