"""Differential oracles: independent implementations must agree.

Two cross-checks, each pairing a fast/structured implementation with a
slower/simpler one on the *same* input:

* **SOS vs interval** — when :class:`~repro.verifier.sos_verifier.
  SOSVerifier` accepts a candidate barrier, the branch-and-prune
  interval verifier must not find a concrete *violation* of any of the
  conditions (13)-(15) on the same candidate with the same multipliers.
  The check is one-sided by design: SOS acceptance is a proof, so a
  concrete counterexample refutes the pipeline; interval UNKNOWN /
  delta-sat outcomes and SOS *rejections* are not disagreements (the two
  verifiers have incomparable incompleteness).

* **Tape vs naive autodiff** — :class:`repro.autodiff.Tape` replays a
  captured forward+backward pass; its leaf gradients must be bitwise
  equal to a freshly-built graph's ``backward()`` on the same values.

Disagreements are minimized (via :func:`repro.soundness.strategies.
greedy_shrink` when a shrinker is available) and dumped as JSON repro
cases under ``results/soundness_repros/``.

This module imports ``repro.verifier`` — import it explicitly
(``from repro.soundness import oracles``); it is deliberately NOT
re-exported from ``repro.soundness.__init__`` (import cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.poly import Polynomial
from repro.soundness.strategies import describe, dump_repro

__all__ = [
    "OracleDisagreement",
    "VerifierComparison",
    "compare_verifiers",
    "compare_tape_gradients",
    "numeric_gradient",
]


def numeric_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function — the slowest,
    simplest reference every autodiff oracle ultimately anchors to."""
    x = np.asarray(x, dtype=float)
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        g[idx] = (fn(xp) - fn(xm)) / (2 * eps)
        it.iternext()
    return g


@dataclass
class OracleDisagreement:
    """One cross-implementation conflict, with enough context to replay."""

    oracle: str
    detail: str
    payload: Dict[str, Any] = field(default_factory=dict)
    dump_path: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - message formatting
        msg = f"[{self.oracle}] {self.detail}"
        if self.dump_path:
            msg += f" (repro: {self.dump_path})"
        return msg


# ----------------------------------------------------------------------
# SOS verifier  vs  interval verifier
# ----------------------------------------------------------------------
@dataclass
class VerifierComparison:
    """Outcome of one SOS-vs-interval differential run."""

    sos_ok: bool
    interval_outcomes: Dict[str, str]
    disagreements: List[OracleDisagreement]

    @property
    def ok(self) -> bool:
        return not self.disagreements


def compare_verifiers(
    problem: Any,
    B: Polynomial,
    controller_polys: Sequence[Polynomial] = (),
    sigma_star: Optional[Sequence[float]] = None,
    sos_config: Any = None,
    interval_config: Any = None,
    dump: bool = True,
    dump_tag: str = "",
) -> VerifierComparison:
    """Run both verifiers on the same candidate and reconcile verdicts.

    A disagreement is recorded when the SOS verifier *accepts* ``B`` but
    branch-and-prune finds a VIOLATED condition — i.e. a concrete point
    refuting a claimed proof.  The interval pass reuses the SOS run's
    synthesized ``lambda`` so both check the identical Lie inequality.
    """
    from repro.smt.bnp import CheckStatus
    from repro.verifier.interval_verifier import IntervalVerifier
    from repro.verifier.sos_verifier import SOSVerifier

    sos = SOSVerifier(
        problem, controller_polys, sigma_star=sigma_star, config=sos_config
    )
    verification = sos.verify(B)

    lam = None
    lambda_polys = getattr(verification, "lambda_polys", None) or {}
    if lambda_polys:
        lam = next(iter(lambda_polys.values()))

    interval = IntervalVerifier(
        problem,
        controller_polys=controller_polys,
        sigma_star=sigma_star,
        config=interval_config,
    )
    iv = interval.verify(B, lambda_poly=lam)

    outcomes = {
        name: out.status.name for name, out in iv.outcomes.items()
    }
    disagreements: List[OracleDisagreement] = []
    if verification.ok:
        for name, out in iv.outcomes.items():
            if out.status is not CheckStatus.VIOLATED:
                continue
            detail = (
                f"SOS proved candidate but interval verifier found a "
                f"violation of {name!r} at {out.witness} "
                f"(value {out.witness_value})"
            )
            payload = {
                "oracle": "sos_vs_interval",
                "condition": name,
                "witness": describe(out.witness),
                "witness_value": out.witness_value,
                "barrier": describe(B),
                "controller_polys": describe(list(controller_polys)),
                "sigma_star": list(sigma_star or ()),
                "problem": getattr(problem, "name", ""),
                "interval_outcomes": outcomes,
            }
            path = None
            if dump:
                tag = dump_tag or getattr(problem, "name", "case")
                path = dump_repro(f"sos-vs-interval-{tag}-{name}", payload)
            disagreements.append(
                OracleDisagreement(
                    oracle="sos_vs_interval",
                    detail=detail,
                    payload=payload,
                    dump_path=path,
                )
            )
    return VerifierComparison(
        sos_ok=bool(verification.ok),
        interval_outcomes=outcomes,
        disagreements=disagreements,
    )


# ----------------------------------------------------------------------
# Tape replay  vs  naive fresh backward
# ----------------------------------------------------------------------
def _leaf_grads(leaves: Sequence[Any]) -> List[Optional[np.ndarray]]:
    return [
        None if leaf.grad is None else np.array(leaf.grad, copy=True)
        for leaf in leaves
    ]


def compare_tape_gradients(
    build_loss: Callable[[], Any],
    leaves: Sequence[Any],
    dump: bool = True,
    dump_tag: str = "case",
) -> List[OracleDisagreement]:
    """Bitwise-compare Tape-replayed gradients against a fresh backward.

    ``build_loss()`` must run a forward pass over ``leaves`` (Tensors
    with ``requires_grad=True``) and return the scalar loss.  The
    reference gradients come from ``loss.backward()`` on a fresh graph;
    the candidate gradients from capturing a second fresh graph in a
    :class:`~repro.autodiff.Tape` and replaying it.  Both paths execute
    the same float ops in the same order, so anything short of bitwise
    equality is a replay bug.
    """
    from repro.autodiff import Tape

    # reference: fresh graph, plain backward
    for leaf in leaves:
        leaf.grad = None
    loss = build_loss()
    loss.backward()
    want = _leaf_grads(leaves)

    # candidate: fresh graph, captured and replayed through the tape
    for leaf in leaves:
        leaf.grad = None
    tape = Tape(build_loss())
    for leaf in leaves:
        leaf.grad = None
    tape.run()
    got = _leaf_grads(leaves)

    disagreements: List[OracleDisagreement] = []
    for i, (w, g) in enumerate(zip(want, got)):
        if w is None and g is None:
            continue
        if (
            w is None
            or g is None
            or w.shape != g.shape
            or not np.array_equal(w, g)
        ):
            detail = (
                f"tape replay gradient for leaf {i} differs from naive "
                f"backward (max abs diff "
                f"{np.max(np.abs(np.asarray(w) - np.asarray(g))) if w is not None and g is not None and w.shape == g.shape else 'shape/None mismatch'})"
            )
            payload = {
                "oracle": "tape_vs_naive",
                "leaf_index": i,
                "leaf_value": describe(np.asarray(leaves[i].data)),
                "naive_grad": describe(w),
                "tape_grad": describe(g),
            }
            path = None
            if dump:
                path = dump_repro(
                    f"tape-vs-naive-{dump_tag}-leaf{i}", payload
                )
            disagreements.append(
                OracleDisagreement(
                    oracle="tape_vs_naive",
                    detail=detail,
                    payload=payload,
                    dump_path=path,
                )
            )
    return disagreements
