"""Lossless JSON (de)serialization of certificate bundles.

The certification service's content-addressed cache stores every
accepted :class:`~repro.soundness.certificate.CertificateBundle` on
disk and *re-proves* it with :func:`repro.soundness.check_certificate`
before serving a hit — which only means anything if the round trip is
bit-exact.  It is: Python's ``json`` serializes ``float64`` via
shortest-repr (lossless for every IEEE double), exponent tuples become
integer lists, and Gram matrices become nested lists restored with an
explicit ``float64`` dtype.  ``bundle_from_dict(bundle_to_dict(b))``
reproduces every coefficient, basis exponent, and Gram entry of ``b``
exactly, so an exact recheck of the restored bundle is an exact recheck
of the original.

No compression, no pickles: entries stay human-greppable and cannot
execute code on load — a cache shared by "millions of users" must not
deserialize attacker-controlled bytecode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.poly import Polynomial
from repro.soundness.certificate import (
    CertificateBundle,
    ConditionCertificate,
    MultiplierCertificate,
)

SERIALIZE_SCHEMA_VERSION = 1


# -- polynomials ---------------------------------------------------------
def poly_to_dict(poly: Polynomial) -> Dict[str, Any]:
    """``{"n": n_vars, "terms": [[exponents..., coeff], ...]}`` with a
    sorted term order so equal polynomials serialize identically."""
    terms = [
        [list(alpha), float(c)]
        for alpha, c in sorted(poly.coeffs.items())
    ]
    return {"n": int(poly.n_vars), "terms": terms}


def poly_from_dict(doc: Dict[str, Any]) -> Polynomial:
    coeffs = {
        tuple(int(e) for e in alpha): float(c) for alpha, c in doc["terms"]
    }
    return Polynomial(int(doc["n"]), coeffs)


def _basis_to_list(basis: Tuple[Tuple[int, ...], ...]) -> List[List[int]]:
    return [list(alpha) for alpha in basis]


def _basis_from_list(doc: Any) -> Tuple[Tuple[int, ...], ...]:
    return tuple(tuple(int(e) for e in alpha) for alpha in doc)


def _gram_to_list(gram: np.ndarray) -> List[List[float]]:
    return np.asarray(gram, dtype=np.float64).tolist()


def _gram_from_list(doc: Any) -> np.ndarray:
    return np.asarray(doc, dtype=np.float64)


# -- certificates --------------------------------------------------------
def _multiplier_to_dict(cert: MultiplierCertificate) -> Dict[str, Any]:
    return {
        "constraint": poly_to_dict(cert.constraint),
        "basis": _basis_to_list(cert.basis),
        "gram": _gram_to_list(cert.gram),
    }


def _multiplier_from_dict(doc: Dict[str, Any]) -> MultiplierCertificate:
    return MultiplierCertificate(
        constraint=poly_from_dict(doc["constraint"]),
        basis=_basis_from_list(doc["basis"]),
        gram=_gram_from_list(doc["gram"]),
    )


def _condition_to_dict(cert: ConditionCertificate) -> Dict[str, Any]:
    return {
        "name": cert.name,
        "base": cert.base,
        "margin": float(cert.margin),
        "endpoint": [float(v) for v in cert.endpoint],
        "slack_basis": _basis_to_list(cert.slack_basis),
        "slack_gram": _gram_to_list(cert.slack_gram),
        "multipliers": [_multiplier_to_dict(m) for m in cert.multipliers],
        "lambda_poly": (
            poly_to_dict(cert.lambda_poly)
            if cert.lambda_poly is not None
            else None
        ),
        "box_lo": [float(v) for v in cert.box_lo],
        "box_hi": [float(v) for v in cert.box_hi],
    }


def _condition_from_dict(doc: Dict[str, Any]) -> ConditionCertificate:
    return ConditionCertificate(
        name=str(doc["name"]),
        base=str(doc["base"]),
        margin=float(doc["margin"]),
        endpoint=tuple(float(v) for v in doc["endpoint"]),
        slack_basis=_basis_from_list(doc["slack_basis"]),
        slack_gram=_gram_from_list(doc["slack_gram"]),
        multipliers=[
            _multiplier_from_dict(m) for m in doc["multipliers"]
        ],
        lambda_poly=(
            poly_from_dict(doc["lambda_poly"])
            if doc.get("lambda_poly") is not None
            else None
        ),
        box_lo=tuple(float(v) for v in doc["box_lo"]),
        box_hi=tuple(float(v) for v in doc["box_hi"]),
    )


def bundle_to_dict(bundle: CertificateBundle) -> Dict[str, Any]:
    """JSON-safe rendering of a bundle; inverse of :func:`bundle_from_dict`."""
    return {
        "schema_version": SERIALIZE_SCHEMA_VERSION,
        "barrier": poly_to_dict(bundle.barrier),
        "barrier_scale": float(bundle.barrier_scale),
        "controller_polys": [
            poly_to_dict(p) for p in bundle.controller_polys
        ],
        "sigma_star": [float(v) for v in bundle.sigma_star],
        "conditions": [_condition_to_dict(c) for c in bundle.conditions],
    }


def bundle_from_dict(doc: Dict[str, Any]) -> CertificateBundle:
    """Rebuild a bundle serialized by :func:`bundle_to_dict` bit-exactly."""
    version = doc.get("schema_version")
    if version != SERIALIZE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported certificate bundle schema_version {version!r} "
            f"(expected {SERIALIZE_SCHEMA_VERSION})"
        )
    return CertificateBundle(
        barrier=poly_from_dict(doc["barrier"]),
        barrier_scale=float(doc["barrier_scale"]),
        controller_polys=[
            poly_from_dict(p) for p in doc.get("controller_polys", [])
        ],
        sigma_star=[float(v) for v in doc.get("sigma_star", [])],
        conditions=[
            _condition_from_dict(c) for c in doc.get("conditions", [])
        ],
    )
