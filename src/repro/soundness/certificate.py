"""Certificate payloads captured by the SOS verifier for exact recheck.

These are plain data containers — the verifier (``repro.verifier``)
fills them from the solved SDP blocks, and the exact checker
(:mod:`repro.soundness.checker`) consumes them.  Keeping them in their
own module lets the verifier import the capture types without pulling
in the rational-arithmetic machinery (and without an import cycle:
nothing here imports ``repro.verifier``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.poly import Polynomial
from repro.poly.monomials import Exponent


@dataclass
class MultiplierCertificate:
    """One SOS multiplier ``sigma_i = m^T Q m`` paired with its
    constraint ``g_i >= 0`` from the region description."""

    constraint: Polynomial
    basis: Tuple[Exponent, ...]
    gram: np.ndarray


@dataclass
class ConditionCertificate:
    """Everything needed to recheck one Putinar identity exactly.

    The verifier certified (in floats) that

        expr - margin - sum_i sigma_i g_i  [- lambda * B]  =  m^T Q_s m

    with all Gram matrices PSD.  ``base`` selects how ``expr`` is
    *recomputed over ℚ* by the checker (``init``: B; ``unsafe``: -B;
    ``lie``: the exact Lie derivative along the closed loop at
    ``endpoint``), so the check is independent of the float pipeline.
    """

    name: str
    base: str  # "init" | "unsafe" | "lie"
    margin: float
    endpoint: Tuple[float, ...]
    slack_basis: Tuple[Exponent, ...]
    slack_gram: np.ndarray
    multipliers: List[MultiplierCertificate]
    lambda_poly: Optional[Polynomial]
    box_lo: Tuple[float, ...]
    box_hi: Tuple[float, ...]


@dataclass
class CertificateBundle:
    """Full per-candidate certificate attached to a passing
    :class:`~repro.verifier.VerificationResult`.

    ``barrier`` is the *normalized* candidate the conditions were
    certified for (``raw_candidate / barrier_scale`` in floats); barrier
    conditions are scale-invariant, so a certificate for it is a
    certificate for the raw candidate up to the recorded positive
    scale.
    """

    barrier: Polynomial
    barrier_scale: float
    controller_polys: List[Polynomial] = field(default_factory=list)
    sigma_star: List[float] = field(default_factory=list)
    conditions: List[ConditionCertificate] = field(default_factory=list)
