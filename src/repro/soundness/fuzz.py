"""Randomized soundness fuzzing CLI.

    python -m repro.soundness.fuzz                    # quick pass, seed 0
    python -m repro.soundness.fuzz --seed 1234        # replay a CI seed
    python -m repro.soundness.fuzz --suite autodiff   # one suite only
    REPRO_FUZZ_LONG=1 python -m repro.soundness.fuzz  # 20x examples
    python -m repro.soundness.fuzz --rounds 0         # loop forever

Each round runs the property suites below with a printed seed (so any
failure is replayable with ``REPRO_PROPERTY_SEED=<seed>`` or
``--seed``); a failing property greedily shrinks its counterexample and
dumps a JSON repro under ``results/soundness_repros/`` before exiting
nonzero.

Suites
------
``exact``     rational LDL^T / Gram-expansion invariants of the exact
              checker's arithmetic core.
``autodiff``  Tape replay vs naive backward on random small networks
              (bitwise agreement).
``verifier``  SOS verifier vs interval branch-and-prune on random
              quadratic candidates over a decaying system family
              (one-sided: an SOS proof must never be refuted by a
              concrete interval witness).
"""

from __future__ import annotations

import argparse
import random
import sys
from fractions import Fraction
from typing import Optional, Sequence

import numpy as np

from repro.soundness import strategies as st
from repro.soundness.rational import (
    gram_polynomial,
    ldlt_psd,
    rationalize_matrix,
)


# ----------------------------------------------------------------------
# suite: exact arithmetic core
# ----------------------------------------------------------------------
def _prop_ldlt_accepts_psd(Q) -> None:
    R = rationalize_matrix(np.array(Q, dtype=float), None)
    assert ldlt_psd(R), "exact LDL^T rejected a PSD-by-construction matrix"


def _prop_ldlt_rejects_shifted(Q) -> None:
    Qf = np.array(Q, dtype=float)
    # push the matrix strictly indefinite: subtract more than its largest
    # eigenvalue on one diagonal entry
    shift = float(np.linalg.eigvalsh(Qf)[-1]) + 1.0
    Qf[0, 0] -= shift
    R = rationalize_matrix(Qf, None)
    assert not ldlt_psd(R), "exact LDL^T accepted an indefinite matrix"


def _prop_gram_expansion_matches_float(Q) -> None:
    from repro.poly.monomials import monomials_upto

    size = len(Q)
    n_vars = 2
    basis = monomials_upto(n_vars, 2)[:size]
    R = rationalize_matrix(np.array(Q, dtype=float), None)
    p = gram_polynomial(basis, R, n_vars)
    rng = np.random.default_rng(0)
    pts = rng.uniform(-1.0, 1.0, size=(16, n_vars))
    mono = np.stack(
        [np.prod(pts**np.array(a, dtype=float), axis=1) for a in basis]
    )
    want = np.einsum("ik,ij,jk->k", mono, np.array(Q, dtype=float), mono)
    got = p.to_polynomial()(pts)
    assert np.allclose(got, want, atol=1e-8), (
        f"gram expansion drifted from float evaluation "
        f"(max {np.max(np.abs(got - want))})"
    )


def run_exact_suite(seed: int, n_examples: int) -> int:
    grams = st.psd_matrices(3)
    total = 0
    total += st.run_property(
        "exact-ldlt-accepts-psd", grams, _prop_ldlt_accepts_psd,
        n_examples=n_examples, seed=seed,
    )
    total += st.run_property(
        "exact-ldlt-rejects-indefinite", grams, _prop_ldlt_rejects_shifted,
        n_examples=n_examples, seed=seed + 1,
    )
    total += st.run_property(
        "exact-gram-expansion", grams, _prop_gram_expansion_matches_float,
        n_examples=n_examples, seed=seed + 2,
    )
    return total


# ----------------------------------------------------------------------
# suite: tape vs naive autodiff
# ----------------------------------------------------------------------
def _network_case() -> st.Strategy:
    # (n_in, n_hidden, batch, activation index, scale)
    return st.tuples(
        st.integers(1, 5),
        st.integers(1, 6),
        st.integers(1, 4),
        st.integers(0, 3),
        st.floats(0.1, 2.0),
    )


def _prop_tape_matches_naive(case) -> None:
    from repro.autodiff import Tensor
    from repro.soundness.oracles import compare_tape_gradients

    n_in, n_hidden, batch, act, scale = case
    rng = np.random.default_rng(abs(hash(case)) % (2**32))
    W1 = Tensor(scale * rng.normal(size=(n_in, n_hidden)), requires_grad=True)
    b1 = Tensor(rng.normal(size=(1, n_hidden)), requires_grad=True)
    W2 = Tensor(rng.normal(size=(n_hidden, 1)), requires_grad=True)
    X = Tensor(rng.normal(size=(batch, n_in)))

    def build():
        h = X @ W1 + b1
        h = (h.tanh(), h.sigmoid(), h.relu(), h.exp())[act]
        return ((h @ W2) ** 2.0).mean()

    dis = compare_tape_gradients(build, [W1, b1, W2], dump=False)
    assert not dis, "; ".join(str(d) for d in dis)


def run_autodiff_suite(seed: int, n_examples: int) -> int:
    return st.run_property(
        "tape-vs-naive", _network_case(), _prop_tape_matches_naive,
        n_examples=n_examples, seed=seed,
    )


# ----------------------------------------------------------------------
# suite: SOS vs interval verifier
# ----------------------------------------------------------------------
def _quadratic_case() -> st.Strategy:
    # (PD quadratic Gram over [1, x, y], decay rate)
    return st.tuples(st.psd_matrices(2), st.floats(0.2, 2.0))


def _prop_sos_never_refuted(case) -> None:
    from repro.dynamics import CCDS, ControlAffineSystem
    from repro.poly import Polynomial
    from repro.sets import Box
    from repro.soundness.oracles import compare_verifiers
    from repro.verifier.interval_verifier import IntervalVerifierConfig
    from repro.verifier.sos_verifier import VerifierConfig

    Q, rate = case
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-rate * x, -rate * y])
    prob = CCDS(
        system,
        theta=Box.cube(2, -0.3, 0.3, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box.cube(2, 1.5, 2.0, name="xi"),
        name="fuzz-decay",
    )
    # candidate: 1 - x^T Q x / q(1.2, 1.2) — nonnegative near the origin,
    # negative on the unsafe corner box; SOS accepts many but not all
    q = (
        Q[0][0] * x * x + (Q[0][1] + Q[1][0]) * x * y + Q[1][1] * y * y
    )
    level = float(q(np.array([[1.2, 1.2]]))[0])
    if level <= 0.0:
        return  # degenerate draw; nothing to check
    B = Polynomial.constant(2, 1.0) - q * (1.0 / level)
    cmp = compare_verifiers(
        prob,
        B,
        sos_config=VerifierConfig(),
        interval_config=IntervalVerifierConfig(
            max_boxes_per_check=5000, time_limit_per_check=10.0
        ),
        dump=False,
    )
    assert cmp.ok, "; ".join(str(d) for d in cmp.disagreements)


def run_verifier_suite(seed: int, n_examples: int) -> int:
    return st.run_property(
        "sos-vs-interval", _quadratic_case(), _prop_sos_never_refuted,
        n_examples=n_examples, seed=seed,
    )


SUITES = {
    "exact": run_exact_suite,
    "autodiff": run_autodiff_suite,
    "verifier": run_verifier_suite,
}

#: per-suite quick example counts (scaled by REPRO_FUZZ_LONG)
QUICK_EXAMPLES = {"exact": 25, "autodiff": 25, "verifier": 5}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.soundness.fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--suite", choices=["all", *SUITES], default="all",
        help="which suite to run (default all)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help=f"base seed (default: ${st.SEED_ENV} or 0)",
    )
    parser.add_argument(
        "--examples", type=int, default=None,
        help="examples per property (default: per-suite quick count, "
             f"x20 under ${st.FUZZ_LONG_ENV})",
    )
    parser.add_argument(
        "--rounds", type=int, default=1,
        help="fuzz rounds; each round advances the seed (0 = loop forever)",
    )
    args = parser.parse_args(argv)

    base_seed = st.resolve_seed(0) if args.seed is None else args.seed
    names = list(SUITES) if args.suite == "all" else [args.suite]

    round_index = 0
    while True:
        seed = base_seed + 1000 * round_index
        for name in names:
            n = (
                args.examples
                if args.examples is not None
                else st.fuzz_examples(QUICK_EXAMPLES[name])
            )
            print(f"[fuzz] suite={name} seed={seed} examples={n} "
                  f"(replay: {st.SEED_ENV}={seed})", flush=True)
            try:
                ran = SUITES[name](seed, n)
            except st.PropertyFailure as exc:
                print(f"[fuzz] FAILED\n{exc}", file=sys.stderr)
                return 1
            print(f"[fuzz] suite={name} ok ({ran} examples)", flush=True)
        round_index += 1
        if args.rounds and round_index >= args.rounds:
            break
    print(f"[fuzz] all suites passed ({round_index} round(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
