"""Exact-arithmetic recheck of SOS barrier certificates (Peyrl–Parrilo
style rational rounding).

The interior-point solver proves the Putinar identities (13)-(15) only
in floating point.  This checker re-proves each one **over ℚ**, from the
captured :class:`~repro.soundness.certificate.CertificateBundle`:

1. the target polynomial is *recomputed exactly* (``B`` for (13), ``-B``
   for (14), the exact Lie derivative along the rational closed loop at
   the inclusion-error endpoint for (15)) — independent of the float
   pipeline that produced the certificate;
2. each multiplier Gram matrix is embedded into ℚ, shifted by the
   smallest dyadic ``delta_i`` that makes it *exactly* PSD
   (:func:`~repro.soundness.rational.find_psd_shift`); the shifted
   ``sigma_i`` is exactly SOS by construction;
3. the coefficient residual between the exact target and the embedded
   slack Gram polynomial is absorbed into the slack Gram entries, spread
   over every basis pair producing each monomial — after absorption the
   identity holds **exactly** (coefficient equality over ℚ, re-verified
   symbolically);
4. the absorbed slack Gram is certified PSD by exact rational LDLᵀ,
   after a diagonal shift ``delta_s`` when needed.  A shift is not free:
   ``m^T (Q + delta I) m <= m^T Q m + delta * S`` with ``S`` the exact
   box bound on ``sum_k m_k^2``, so ``delta_s * S`` is charged against
   the strictness margin.  The condition is sound iff the *certified
   margin* ``margin - delta_s * S`` stays positive (nonnegative for the
   non-strict condition (13)).

The result is a machine-checkable :class:`SoundnessReport`;
:meth:`repro.cegis.SNBC.run` refuses to report success when it fails,
surfacing a :class:`SoundnessError` instead.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.resilience.errors import ReproError
from repro.soundness.certificate import (
    CertificateBundle,
    ConditionCertificate,
)
from repro.soundness.rational import (
    DEFAULT_DELTA_LADDER,
    RationalMatrix,
    RationalPolynomial,
    basis_square_bound,
    find_psd_shift,
    gram_polynomial,
    rational_closed_loop,
    rational_lie_derivative,
    rationalize_matrix,
    shift_diagonal,
)

SOUNDNESS_SCHEMA_VERSION = 1

#: paper numbering of the condition families (matches the verifier)
PAPER_CONDITION_NUMBERS = {"init": 13, "unsafe": 14, "lie": 15}


class SoundnessError(ReproError):
    """The exact rational recheck rejected a float-verified certificate."""

    default_phase = "soundness"


@dataclass
class SoundnessConfig:
    """Knobs of the exact checker."""

    #: quantize Gram entries via ``Fraction.limit_denominator`` before
    #: absorption, bounding coefficient bit-growth inside the rational
    #: LDLᵀ; quantization error is absorbed into the slack residual, so
    #: the final identity stays exact.  ``None``: fully exact embedding.
    max_denominator: Optional[int] = 2 ** 40
    #: dyadic diagonal shifts tried (smallest first) to restore exact
    #: PSD-ness; each accepted shift is charged against the margin
    delta_ladder: Tuple[Fraction, ...] = DEFAULT_DELTA_LADDER


@dataclass
class ConditionSoundness:
    """Exact-recheck verdict for one condition (13)/(14)/(15)."""

    name: str
    base: str
    paper_condition: Optional[int]
    ok: bool
    #: the Putinar identity holds with coefficient equality over ℚ
    identity_ok: bool
    #: the absorbed slack Gram is exactly PSD (possibly after a shift)
    psd_ok: bool
    margin: float
    #: diagonal shift applied to the slack Gram (0.0 when none needed)
    slack_shift: float
    #: exact box bound S on sum_k m_k(x)^2 for the slack basis
    basis_bound: float
    #: margin - slack_shift * basis_bound, the exactly-certified margin
    certified_margin: float
    #: the same margin as an exact fraction string (machine-checkable)
    certified_margin_exact: str
    multiplier_shifts: List[float] = field(default_factory=list)
    absorbed_terms: int = 0
    max_absorption: float = 0.0
    slack_size: int = 0
    message: str = ""
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ConditionSoundness":
        return cls(**doc)


@dataclass
class SoundnessReport:
    """Machine-checkable outcome of the exact recheck of one candidate.

    ``barrier_hash`` pins the exact float coefficients of the certified
    (normalized) polynomial, so two reports for the same candidate are
    bit-comparable across runs/resumes.
    """

    ok: bool
    conditions: List[ConditionSoundness]
    barrier_scale: float
    barrier_hash: str
    n_vars: int
    max_denominator: Optional[int]
    elapsed_seconds: float
    schema_version: int = SOUNDNESS_SCHEMA_VERSION

    def failed_conditions(self) -> List[str]:
        return [c.name for c in self.conditions if not c.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "ok": self.ok,
            "conditions": [c.to_dict() for c in self.conditions],
            "barrier_scale": self.barrier_scale,
            "barrier_hash": self.barrier_hash,
            "n_vars": self.n_vars,
            "max_denominator": self.max_denominator,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SoundnessReport":
        return cls(
            ok=bool(doc["ok"]),
            conditions=[
                ConditionSoundness.from_dict(c) for c in doc["conditions"]
            ],
            barrier_scale=float(doc["barrier_scale"]),
            barrier_hash=str(doc["barrier_hash"]),
            n_vars=int(doc["n_vars"]),
            max_denominator=doc.get("max_denominator"),
            elapsed_seconds=float(doc["elapsed_seconds"]),
            schema_version=int(
                doc.get("schema_version", SOUNDNESS_SCHEMA_VERSION)
            ),
        )

    def summary(self) -> Dict[str, Any]:
        """Small additive payload for BENCH rows."""
        margins = [c.certified_margin for c in self.conditions]
        return {
            "ok": self.ok,
            "conditions": len(self.conditions),
            "min_certified_margin": min(margins) if margins else None,
            "max_slack_shift": max(
                (c.slack_shift for c in self.conditions), default=0.0
            ),
        }


def barrier_fingerprint(p) -> str:
    """Bit-exact fingerprint of a float polynomial's coefficients."""
    items = sorted(
        (tuple(alpha), float(c).hex()) for alpha, c in p.coeffs.items()
    )
    blob = repr((p.n_vars, items)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
def _slack_pairs(
    basis: Sequence[Tuple[int, ...]],
) -> Dict[Tuple[int, ...], List[Tuple[int, int]]]:
    """Monomial -> every (i <= j) basis pair producing it."""
    from repro.poly.monomials import add_exponents

    pairs: Dict[Tuple[int, ...], List[Tuple[int, int]]] = {}
    for i, bi in enumerate(basis):
        for j in range(i, len(basis)):
            pairs.setdefault(add_exponents(bi, basis[j]), []).append((i, j))
    return pairs


def _absorb_residual(
    Q: RationalMatrix,
    basis: Sequence[Tuple[int, ...]],
    residual: RationalPolynomial,
) -> Tuple[int, Fraction, Optional[str]]:
    """Fold ``residual`` into the Gram entries of ``Q`` *exactly*.

    Each residual monomial is spread uniformly over every basis pair
    that produces it (diagonal pairs contribute their entry once,
    off-diagonal pairs twice), which keeps the per-entry perturbation —
    and hence the PSD shift the perturbed matrix needs — minimal.
    Returns ``(n_absorbed, max |absorbed coefficient|, error)``;
    ``error`` is a message when some monomial lies outside the slack
    basis product support (the identity is then unfixable).
    """
    pairs = _slack_pairs(basis)
    n_absorbed = 0
    max_abs = Fraction(0)
    for alpha, r in residual.coeffs.items():
        plist = pairs.get(alpha)
        if not plist:
            return (
                n_absorbed,
                max_abs,
                f"residual monomial {alpha} (coefficient {float(r):.3e}) "
                "outside the slack basis product support",
            )
        weight = sum(1 if i == j else 2 for i, j in plist)
        share = r / weight
        for i, j in plist:
            Q[i][j] = Q[i][j] + share
            if i != j:
                Q[j][i] = Q[j][i] + share
        n_absorbed += 1
        if abs(r) > max_abs:
            max_abs = abs(r)
    return n_absorbed, max_abs, None


def _check_condition(
    cert: ConditionCertificate,
    target: RationalPolynomial,
    rat_barrier: RationalPolynomial,
    config: SoundnessConfig,
) -> ConditionSoundness:
    """Run steps 2-4 of the module docstring for one condition."""
    t0 = time.perf_counter()
    n_vars = target.n_vars
    margin = Fraction(float(cert.margin))
    base = cert.base
    paper = PAPER_CONDITION_NUMBERS.get(base)
    fail_kwargs = dict(
        name=cert.name,
        base=base,
        paper_condition=paper,
        margin=float(cert.margin),
        slack_size=len(cert.slack_basis),
    )

    def fail(message: str, **kw) -> ConditionSoundness:
        out = ConditionSoundness(
            ok=False,
            identity_ok=bool(kw.pop("identity_ok", False)),
            psd_ok=bool(kw.pop("psd_ok", False)),
            slack_shift=float(kw.pop("slack_shift", 0.0)),
            basis_bound=float(kw.pop("basis_bound", 0.0)),
            certified_margin=float(kw.pop("certified_margin", 0.0)),
            certified_margin_exact=str(kw.pop("certified_margin_exact", "0")),
            message=message,
            elapsed_seconds=time.perf_counter() - t0,
            **fail_kwargs,
            **kw,
        )
        return out

    # exact Putinar left-hand side: t = target - margin - sum sigma_i g_i
    # [- lambda * B]; sigma_i comes from the PSD-shifted rational Gram so
    # it is exactly SOS by construction
    t = target - margin
    consumed: List[Tuple[RationalPolynomial, RationalPolynomial]] = []
    multiplier_shifts: List[float] = []
    for mc in cert.multipliers:
        Qm = rationalize_matrix(mc.gram, config.max_denominator)
        delta_m = find_psd_shift(Qm, config.delta_ladder)
        if delta_m is None:
            return fail(
                f"multiplier Gram for constraint {mc.constraint} cannot be "
                "made PSD within the shift ladder",
                multiplier_shifts=multiplier_shifts,
            )
        if delta_m:
            Qm = shift_diagonal(Qm, delta_m)
        multiplier_shifts.append(float(delta_m))
        sigma = gram_polynomial(mc.basis, Qm, n_vars)
        g = RationalPolynomial.from_polynomial(mc.constraint)
        consumed.append((sigma, g))
        t = t - sigma * g
    lam: Optional[RationalPolynomial] = None
    if cert.lambda_poly is not None:
        lam = RationalPolynomial.from_polynomial(cert.lambda_poly)
        t = t - lam * rat_barrier

    # embed the slack Gram and absorb the coefficient residual exactly
    Qs = rationalize_matrix(cert.slack_gram, config.max_denominator)
    realized = gram_polynomial(cert.slack_basis, Qs, n_vars)
    residual = t - realized
    n_absorbed, max_abs, absorb_err = _absorb_residual(
        Qs, cert.slack_basis, residual
    )
    if absorb_err is not None:
        return fail(absorb_err, multiplier_shifts=multiplier_shifts)

    # symbolic re-verification of the full identity over ℚ: the absorbed
    # slack Gram polynomial plus margin, multiplier and lambda terms must
    # equal the independently recomputed target coefficient-for-coefficient
    lhs = gram_polynomial(cert.slack_basis, Qs, n_vars) + margin
    for sigma, g in consumed:
        lhs = lhs + sigma * g
    if lam is not None:
        lhs = lhs + lam * rat_barrier
    identity_ok = lhs == target
    if not identity_ok:  # absorption covers every monomial, so this
        # can only mean a bookkeeping bug — never accept
        return fail(
            "Putinar identity does not hold over ℚ after absorption",
            multiplier_shifts=multiplier_shifts,
            absorbed_terms=n_absorbed,
            max_absorption=float(max_abs),
        )

    # exact PSD certification of the absorbed slack Gram
    delta_s = find_psd_shift(Qs, config.delta_ladder)
    if delta_s is None:
        return fail(
            "slack Gram is not PSD within the shift ladder "
            f"(max absorbed coefficient {float(max_abs):.3e})",
            identity_ok=True,
            multiplier_shifts=multiplier_shifts,
            absorbed_terms=n_absorbed,
            max_absorption=float(max_abs),
        )

    # charge the shift against the strictness margin through the exact
    # basis bound: on the region's box, m^T Qs m >= -delta_s * S, so the
    # certified margin is margin - delta_s * S
    S = basis_square_bound(cert.slack_basis, cert.box_lo, cert.box_hi)
    certified = margin - delta_s * S
    # (13) is non-strict (B >= 0 on Theta): certified margin 0 is sound;
    # (14)/(15) are strict, so the certified margin must stay positive
    strict = base != "init"
    margin_ok = certified > 0 if strict else certified >= 0
    elapsed = time.perf_counter() - t0
    message = ""
    if not margin_ok:
        message = (
            f"certified margin {float(certified):.3e} "
            f"(= {float(cert.margin):.3e} - {float(delta_s):.3e} * "
            f"{float(S):.3e}) is not "
            + ("positive" if strict else "nonnegative")
        )
    return ConditionSoundness(
        ok=bool(margin_ok),
        identity_ok=True,
        psd_ok=True,
        slack_shift=float(delta_s),
        basis_bound=float(S),
        certified_margin=float(certified),
        certified_margin_exact=str(certified),
        multiplier_shifts=multiplier_shifts,
        absorbed_terms=n_absorbed,
        max_absorption=float(max_abs),
        message=message,
        elapsed_seconds=elapsed,
        **fail_kwargs,
    )


def check_certificate(
    problem,
    bundle: CertificateBundle,
    config: Optional[SoundnessConfig] = None,
) -> SoundnessReport:
    """Exact recheck of every condition in a captured certificate bundle.

    ``problem`` is the CCDS the certificate was produced for (duck-typed
    — only ``problem.system`` is used, to recompute the closed loop over
    ℚ).  Pure function: no telemetry, no float tolerance anywhere past
    the lossless ``Fraction(float)`` embeddings.
    """
    config = config or SoundnessConfig()
    t0 = time.perf_counter()
    rat_barrier = RationalPolynomial.from_polynomial(bundle.barrier)
    conditions: List[ConditionSoundness] = []
    for cert in bundle.conditions:
        if cert.base == "init":
            target = rat_barrier
        elif cert.base == "unsafe":
            target = -rat_barrier
        elif cert.base == "lie":
            rat_field = rational_closed_loop(
                problem.system, bundle.controller_polys, cert.endpoint
            )
            target = rational_lie_derivative(rat_barrier, rat_field)
        else:
            raise ValueError(f"unknown condition base {cert.base!r}")
        conditions.append(
            _check_condition(cert, target, rat_barrier, config)
        )
    return SoundnessReport(
        ok=all(c.ok for c in conditions) and bool(conditions),
        conditions=conditions,
        barrier_scale=float(bundle.barrier_scale),
        barrier_hash=barrier_fingerprint(bundle.barrier),
        n_vars=int(bundle.barrier.n_vars),
        max_denominator=config.max_denominator,
        elapsed_seconds=time.perf_counter() - t0,
    )


def check_verification(
    problem,
    verification,
    config: Optional[SoundnessConfig] = None,
) -> Optional[SoundnessReport]:
    """Convenience wrapper: recheck a :class:`VerificationResult` that
    carries a certificate bundle; ``None`` when it carries none (capture
    disabled, or the verification failed)."""
    bundle = getattr(verification, "certificate", None)
    if bundle is None:
        return None
    return check_certificate(problem, bundle, config=config)
