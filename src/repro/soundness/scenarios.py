"""Seeded factory for obstacle-rich semialgebraic workloads.

The generators here mint the ``quad2d_obstacles`` family: a planar
contraction system ``f = -k x`` whose workspace is a floor box with
1-2 Box/Ball obstacles punched out (:class:`repro.sets.DifferenceSet`),
the unsafe set being the union of the obstacles
(:class:`repro.sets.UnionSet`), and the initial set a ball around the
origin.  Every scenario ships a *closed-form* quadratic barrier
``B = c - 0.5 |x|^2``, so a single :class:`~repro.verifier.SOSVerifier`
call (one Putinar certificate per decomposed cell) plus the exact
rational recheck decides it — no CEGIS loop, which is what makes
thousand-scenario sweeps affordable.

Determinism contract: every parameter is derived from
``sha256(seed:salt)`` (the same scheme as
:func:`repro.service.jobs._u`), never from shared RNG state, so a row
is replayable from its seed alone across platforms and processes.
Seeds with ``seed % 5 == 4`` are minted *deliberately infeasible*
(the barrier level is pushed above the closest obstacle), pinning the
``falsified`` outcome class so the conformance gate can detect a
verifier that starts accepting garbage.

Outcomes are terminal by construction:

``certified``
    the SOS verifier accepted every per-cell condition *and* the exact
    checker re-proved every captured certificate over the rationals;
``falsified``
    the verifier rejected the barrier (expected for infeasible seeds);
``unsound``
    the verifier accepted but the rational recheck failed — this is
    the soundness alarm the ``no_soundness_failures`` invariant gates;
``timeout``
    the verify call exceeded its wall-clock budget;
``error``
    an exception escaped — *not* terminal, and gated hard.

Import discipline: like :mod:`repro.soundness.oracles`, this module
imports ``repro.verifier`` and must therefore be imported explicitly
(``from repro.soundness import scenarios``), never eagerly from the
package ``__init__``.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import RegionSpec

FAMILY = "quad2d_obstacles"

#: every 5th seed is minted infeasible (barrier level above the nearest
#: obstacle) so the ``falsified`` outcome class never silently vanishes
INFEASIBLE_STRIDE = 5

#: outcome classes the conformance gate treats as terminal
TERMINAL_OUTCOMES = ("certified", "falsified", "unsound", "timeout")

_FLOOR_HALF = 2.0


def _u(seed: int, salt: str) -> float:
    """Deterministic uniform in [0, 1) from (seed, salt) — stdlib only,
    stable across platforms/processes (no RNG object state)."""
    digest = hashlib.sha256(f"{seed}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(2**64)


@dataclass
class Scenario:
    """One minted workload: problem + closed-form barrier + metadata."""

    seed: int
    name: str
    problem: CCDS
    barrier: Polynomial
    expected: str  # "certifiable" | "infeasible"
    psi_spec: RegionSpec
    params: Dict[str, Any] = field(default_factory=dict)


def _obstacle_specs(seed: int, n_obstacles: int) -> List[RegionSpec]:
    """Place obstacles in disjoint angular sectors, each fully inside
    the floor and strictly away from the origin (so the initial ball
    and the barrier's sublevel set stay clear)."""
    specs: List[RegionSpec] = []
    for j in range(n_obstacles):
        angle = 2.0 * math.pi * (j + _u(seed, f"angle{j}")) / n_obstacles
        rho = 1.2 + 0.4 * _u(seed, f"rho{j}")
        cx = round(rho * math.cos(angle), 6)
        cy = round(rho * math.sin(angle), 6)
        if _u(seed, f"kind{j}") < 0.5:
            radius = round(0.2 + 0.15 * _u(seed, f"radius{j}"), 6)
            specs.append(
                RegionSpec.ball([cx, cy], radius, name=f"obstacle{j}")
            )
        else:
            hx = round(0.15 + 0.15 * _u(seed, f"hx{j}"), 6)
            hy = round(0.15 + 0.15 * _u(seed, f"hy{j}"), 6)
            specs.append(
                RegionSpec.box(
                    [cx - hx, cy - hy], [cx + hx, cy + hy],
                    name=f"obstacle{j}",
                )
            )
    return specs


def _origin_clearance(spec: RegionSpec) -> float:
    """Euclidean distance from the origin to an obstacle spec."""
    if spec.kind == "ball":
        return float(np.linalg.norm(spec.center)) - float(spec.radius)
    lo = np.asarray(spec.lo)
    hi = np.asarray(spec.hi)
    gap = np.maximum(np.maximum(lo, -hi), 0.0)
    return float(np.linalg.norm(gap))


def make_scenario(seed: int) -> Scenario:
    """Mint the scenario for ``seed`` — pure function of the seed."""
    seed = int(seed)
    n_obstacles = 1 + (_u(seed, "n_obstacles") < 0.5)
    obstacle_specs = _obstacle_specs(seed, n_obstacles)
    theta_radius = round(0.25 + 0.15 * _u(seed, "theta"), 6)
    rate = round(0.8 + 0.4 * _u(seed, "rate"), 6)

    floor = RegionSpec.box(
        [-_FLOOR_HALF, -_FLOOR_HALF], [_FLOOR_HALF, _FLOOR_HALF],
        name="floor",
    )
    psi_spec = RegionSpec.difference(floor, *obstacle_specs, name="psi")
    xi_spec = RegionSpec.union_of(*obstacle_specs, name="xi")
    theta_spec = RegionSpec.ball([0.0, 0.0], theta_radius, name="theta")

    # the barrier B = c - 0.5 |x|^2 certifies iff
    #   0.5 * theta_radius^2  <=  c  <  0.5 * clearance^2 - eps
    clearance = min(_origin_clearance(s) for s in obstacle_specs)
    c_lo = 0.5 * theta_radius ** 2
    c_hi = 0.5 * clearance ** 2
    expected = (
        "infeasible" if seed % INFEASIBLE_STRIDE == INFEASIBLE_STRIDE - 1
        else "certifiable"
    )
    if expected == "certifiable":
        # midpoint keeps both the init and unsafe margins healthy
        level = round(0.5 * (c_lo + c_hi), 6)
    else:
        # level above the nearest obstacle: B >= 0 on part of Xi, so
        # condition (14) is genuinely violated, not merely SDP-marginal
        level = round(c_hi + 0.25, 6)

    x1, x2 = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-rate * x1, -rate * x2])
    problem = CCDS(
        system,
        theta=theta_spec.build(),
        psi=psi_spec.build(),
        xi=xi_spec.build(),
        name=f"{FAMILY}[seed={seed}]",
        source="seeded scenario factory (repro.soundness.scenarios)",
    )
    barrier = Polynomial.constant(2, level) - 0.5 * (x1 * x1 + x2 * x2)
    return Scenario(
        seed=seed,
        name=problem.name,
        problem=problem,
        barrier=barrier,
        expected=expected,
        psi_spec=psi_spec,
        params={
            "n_obstacles": int(n_obstacles),
            "theta_radius": theta_radius,
            "rate": rate,
            "level": level,
            "clearance": round(clearance, 6),
        },
    )


def _cell_counts(problem: CCDS) -> Dict[str, int]:
    return {
        "init": len(problem.theta.decompose()),
        "unsafe": len(problem.xi.decompose()),
        "lie": len(problem.psi.decompose()),
    }


def run_scenario(
    seed: int, time_budget_s: Optional[float] = None
) -> Dict[str, Any]:
    """Verify one scenario end to end; returns its result row.

    ``certified`` requires both the SOS acceptance *and* the exact
    rational recheck of every per-cell certificate.  Exceptions are
    caught into the ``error`` outcome (with a typed kind) rather than
    propagated, so a batch always yields one row per seed.
    """
    from repro.soundness import check_certificate
    from repro.verifier import SOSVerifier

    scenario = make_scenario(seed)
    row: Dict[str, Any] = {
        "seed": int(seed),
        "name": scenario.name,
        "family": FAMILY,
        "expected": scenario.expected,
        "params": dict(scenario.params),
        "cells": _cell_counts(scenario.problem),
        "psi_spec_key": scenario.psi_spec.canonical_key()[:16],
    }
    t0 = time.perf_counter()
    try:
        verification = SOSVerifier(scenario.problem, []).verify(
            scenario.barrier
        )
        row["conditions"] = [
            {
                "name": c.name,
                "ok": bool(c.ok),
                "elapsed_seconds": float(c.elapsed_seconds),
            }
            for c in verification.conditions
        ]
        elapsed = time.perf_counter() - t0
        if time_budget_s is not None and elapsed > time_budget_s:
            row["outcome"] = "timeout"
        elif not verification.ok:
            row["outcome"] = "falsified"
            row["soundness_ok"] = None
        else:
            report = check_certificate(
                scenario.problem, verification.certificate
            )
            row["soundness_ok"] = bool(report.ok)
            row["n_exact_conditions"] = len(report.conditions)
            row["outcome"] = "certified" if report.ok else "unsound"
    except Exception as exc:  # noqa: BLE001 — rows must not explode a batch
        row["outcome"] = "error"
        row["error"] = {
            "kind": type(exc).__name__,
            "message": str(exc)[:500],
        }
    row["elapsed_seconds"] = time.perf_counter() - t0
    return row


def run_batch(
    base_seed: int,
    count: int,
    time_budget_s: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Rows for seeds ``base_seed .. base_seed + count - 1``."""
    return [
        run_scenario(base_seed + i, time_budget_s=time_budget_s)
        for i in range(int(count))
    ]


def batch_invariants(rows: Sequence[Dict[str, Any]]) -> Dict[str, bool]:
    """The hard invariants the regress gate checks on a batch."""
    return {
        "all_terminal": all(
            row.get("outcome") in TERMINAL_OUTCOMES for row in rows
        ),
        "no_soundness_failures": all(
            row.get("outcome") != "unsound" for row in rows
        ),
        "expectations_met": all(
            (row.get("expected") == "certifiable")
            == (row.get("outcome") == "certified")
            for row in rows
            if row.get("outcome") not in ("timeout", "error")
        ),
    }
