"""Seeded property-based generators with hypothesis-style shrinking.

A deliberately small, stdlib-only re-creation of the hypothesis core:
a :class:`Strategy` couples a ``generate(rng)`` function with a
``simplify(value)`` function yielding strictly-simpler candidate values,
and :func:`run_property` drives N seeded examples through a property,
greedily shrinking the first failure to a minimal reproduction before
raising.  On top sit the domain generators the soundness suites share —
random polynomials, PSD Gram matrices / true-SOS polynomials, boxes,
semialgebraic sets, feasible SDP instances, and C1-C14-shaped CCDS
safety problems.

Determinism contract: every suite resolves its seed through
:func:`resolve_seed` (env ``REPRO_PROPERTY_SEED`` wins, printed either
way), so any CI failure is replayable with one env var.  The long fuzz
loop is opt-in via ``REPRO_FUZZ_LONG`` (see :func:`fuzz_examples`).
"""

from __future__ import annotations

import itertools
import json
import os
import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.poly import Polynomial
from repro.poly.monomials import Exponent, add_exponents, monomials_upto

#: env var: fixed replay seed for every property suite
SEED_ENV = "REPRO_PROPERTY_SEED"
#: env var: when set (to anything non-empty), property suites multiply
#: their example counts for a nightly-style long fuzz
FUZZ_LONG_ENV = "REPRO_FUZZ_LONG"
#: env var: where minimized failing examples are dumped
DUMP_DIR_ENV = "REPRO_SOUNDNESS_DUMP_DIR"

DEFAULT_DUMP_DIR = "results/soundness_repros"


def resolve_seed(default: int = 0) -> int:
    """The suite seed: ``REPRO_PROPERTY_SEED`` if set, else ``default``."""
    raw = os.environ.get(SEED_ENV, "").strip()
    if raw:
        return int(raw)
    return int(default)


def fuzz_examples(base: int, long_factor: int = 20) -> int:
    """Example count for a suite: ``base`` normally, ``base *
    long_factor`` when the ``REPRO_FUZZ_LONG`` opt-in is set."""
    if os.environ.get(FUZZ_LONG_ENV, "").strip():
        return base * long_factor
    return base


# ----------------------------------------------------------------------
# core
# ----------------------------------------------------------------------
class Strategy:
    """A seeded value generator paired with a shrinker.

    ``generate(rng)`` draws one value from a :class:`random.Random`;
    ``simplify(value)`` yields candidate simpler values (possibly none).
    Shrinking is greedy: the runner walks to the first simplification
    that still fails the property and repeats from there.
    """

    def __init__(
        self,
        generate: Callable[[random.Random], Any],
        simplify: Optional[Callable[[Any], Iterable[Any]]] = None,
        name: str = "strategy",
    ):
        self._generate = generate
        self._simplify = simplify or (lambda value: ())
        self.name = name

    def generate(self, rng: random.Random) -> Any:
        return self._generate(rng)

    def simplify(self, value: Any) -> Iterator[Any]:
        return iter(self._simplify(value))

    def map(self, fn: Callable[[Any], Any], name: str = "") -> "Strategy":
        """Post-process generated values.  The mapped strategy shrinks by
        simplifying the *underlying* value and re-mapping, so ``fn`` must
        be cheap and deterministic."""
        return Strategy(
            lambda rng: fn(self._generate(rng)),
            # note: without the inverse image we cannot shrink through fn;
            # strategies that need good shrinking should build the final
            # value directly instead of mapping
            name=name or f"map({self.name})",
        )


def integers(lo: int, hi: int, name: str = "") -> Strategy:
    """Uniform integer in ``[lo, hi]``; shrinks toward ``lo``."""
    if lo > hi:
        raise ValueError("empty integer range")

    def simplify(value: int) -> Iterator[int]:
        seen = set()
        for cand in (lo, (lo + value) // 2, value - 1):
            if lo <= cand < value and cand not in seen:
                seen.add(cand)
                yield cand

    return Strategy(
        lambda rng: rng.randint(lo, hi), simplify,
        name or f"integers({lo},{hi})",
    )


def floats(lo: float, hi: float, name: str = "") -> Strategy:
    """Uniform float in ``[lo, hi]``; shrinks toward 0 (or ``lo``)."""
    if lo > hi:
        raise ValueError("empty float range")
    anchor = 0.0 if lo <= 0.0 <= hi else lo

    def simplify(value: float) -> Iterator[float]:
        if value == anchor:
            return
        for cand in (anchor, (anchor + value) / 2.0, round(value, 1)):
            if cand != value and lo <= cand <= hi:
                yield cand

    return Strategy(
        lambda rng: rng.uniform(lo, hi), simplify,
        name or f"floats({lo},{hi})",
    )


def sampled_from(options: Sequence[Any], name: str = "") -> Strategy:
    """Uniform choice; shrinks toward earlier options (order matters:
    list the simplest first)."""
    options = list(options)
    if not options:
        raise ValueError("no options")

    def simplify(value: Any) -> Iterator[Any]:
        idx = options.index(value)
        if idx > 0:
            yield options[0]
        if idx > 1:
            yield options[idx - 1]

    return Strategy(
        lambda rng: rng.choice(options), simplify, name or "sampled_from"
    )


def lists(
    elem: Strategy, min_size: int, max_size: int, name: str = ""
) -> Strategy:
    """List of ``elem`` draws; shrinks by dropping entries (down to
    ``min_size``) and by simplifying individual entries."""

    def generate(rng: random.Random) -> List[Any]:
        size = rng.randint(min_size, max_size)
        return [elem.generate(rng) for _ in range(size)]

    def simplify(value: List[Any]) -> Iterator[List[Any]]:
        if len(value) > min_size:
            yield value[: len(value) // 2] if len(value) // 2 >= min_size \
                else value[:-1]
            yield value[:-1]
            yield value[1:]
        for i, v in enumerate(value):
            for sv in elem.simplify(v):
                yield value[:i] + [sv] + value[i + 1:]

    return Strategy(generate, simplify, name or f"lists({elem.name})")


def tuples(*strategies: Strategy) -> Strategy:
    """Tuple with one component per strategy; shrinks componentwise."""

    def generate(rng: random.Random) -> Tuple[Any, ...]:
        return tuple(s.generate(rng) for s in strategies)

    def simplify(value: Tuple[Any, ...]) -> Iterator[Tuple[Any, ...]]:
        for i, s in enumerate(strategies):
            for sv in s.simplify(value[i]):
                yield value[:i] + (sv,) + value[i + 1:]

    return Strategy(
        generate, simplify, f"tuples({', '.join(s.name for s in strategies)})"
    )


def float_arrays(
    min_size: int = 2,
    max_size: int = 5,
    lo: float = -2.0,
    hi: float = 2.0,
    name: str = "",
) -> Strategy:
    """1-D float numpy array; shrinks by dropping entries and moving
    entries toward the anchor (see :func:`floats`)."""
    inner = lists(floats(lo, hi), min_size, max_size)

    def simplify(value: np.ndarray) -> Iterator[np.ndarray]:
        for cand in inner.simplify(list(value)):
            yield np.asarray(cand, dtype=float)

    return Strategy(
        lambda rng: np.asarray(inner.generate(rng), dtype=float),
        simplify,
        name or "float_arrays",
    )


def greedy_shrink(
    value: Any,
    simplify: Callable[[Any], Iterable[Any]],
    still_fails: Callable[[Any], bool],
    max_steps: int = 200,
) -> Any:
    """Walk ``simplify`` greedily: keep the first candidate that still
    fails; stop when none does or the step budget runs out."""
    current = value
    for _ in range(max_steps):
        for cand in simplify(current):
            try:
                failed = still_fails(cand)
            except Exception:
                # a candidate that *errors* (rather than failing the
                # property) is outside the property's domain — skip it
                failed = False
            if failed:
                current = cand
                break
        else:
            break
    return current


# ----------------------------------------------------------------------
# domain generators
# ----------------------------------------------------------------------
def _poly_from_terms(
    n_vars: int, terms: List[Tuple[Exponent, float]]
) -> Polynomial:
    coeffs: Dict[Exponent, float] = {}
    for alpha, c in terms:
        coeffs[alpha] = coeffs.get(alpha, 0.0) + c
    return Polynomial(n_vars, coeffs)


def polynomials(
    n_vars: int,
    max_degree: int = 3,
    max_terms: int = 6,
    coeff_lo: float = -2.0,
    coeff_hi: float = 2.0,
) -> Strategy:
    """Random sparse polynomial; shrinks by dropping terms and rounding
    coefficients toward integers/zero.  Degree-0 and zero polynomials are
    generated deliberately often (they are where edge-case bugs live)."""
    monos = monomials_upto(n_vars, max_degree)

    def generate(rng: random.Random) -> Polynomial:
        roll = rng.random()
        if roll < 0.05:
            return Polynomial.zero(n_vars)
        if roll < 0.15:  # degree-0
            return Polynomial.constant(n_vars, rng.uniform(coeff_lo, coeff_hi))
        n_terms = rng.randint(1, max_terms)
        terms = [
            (rng.choice(monos), rng.uniform(coeff_lo, coeff_hi))
            for _ in range(n_terms)
        ]
        return _poly_from_terms(n_vars, terms)

    def simplify(p: Polynomial) -> Iterator[Polynomial]:
        items = sorted(p.coeffs.items())
        for i in range(len(items)):
            rest = items[:i] + items[i + 1:]
            yield Polynomial(n_vars, dict(rest))
        for alpha, c in items:
            for cand in (round(c), c / 2.0):
                if cand != c:
                    yield Polynomial(
                        n_vars, {**dict(items), alpha: float(cand)}
                    )

    return Strategy(generate, simplify, f"polynomials(n={n_vars})")


def psd_matrices(size: int, jitter: float = 1e-3) -> Strategy:
    """Random strictly-PD matrix ``A A^T + jitter I`` (as a nested list so
    shrinking stays stdlib); shrinks toward the identity-scaled diagonal."""

    def generate(rng: random.Random) -> List[List[float]]:
        A = [[rng.gauss(0.0, 1.0) for _ in range(size)] for _ in range(size)]
        Q = [
            [
                sum(A[i][k] * A[j][k] for k in range(size))
                + (jitter if i == j else 0.0)
                for j in range(size)
            ]
            for i in range(size)
        ]
        return Q

    def simplify(Q: List[List[float]]) -> Iterator[List[List[float]]]:
        # diagonal part only (still PSD), then the scaled identity
        diag = [
            [Q[i][i] if i == j else 0.0 for j in range(size)]
            for i in range(size)
        ]
        if diag != Q:
            yield diag
        eye = [[1.0 if i == j else 0.0 for j in range(size)] for i in range(size)]
        if eye != Q:
            yield eye

    return Strategy(generate, simplify, f"psd_matrices({size})")


def sos_polynomials(n_vars: int, half_degree: int = 1) -> Strategy:
    """A true SOS polynomial ``m^T Q m`` with generated strictly-PD ``Q``
    over the full monomial basis of ``half_degree``."""
    basis = monomials_upto(n_vars, half_degree)
    grams = psd_matrices(len(basis))

    def to_poly(Q: List[List[float]]) -> Polynomial:
        coeffs: Dict[Exponent, float] = {}
        for i, bi in enumerate(basis):
            for j, bj in enumerate(basis):
                a = add_exponents(bi, bj)
                coeffs[a] = coeffs.get(a, 0.0) + Q[i][j]
        return Polynomial(n_vars, coeffs)

    def generate(rng: random.Random) -> Polynomial:
        return to_poly(grams.generate(rng))

    return Strategy(generate, name=f"sos_polynomials(n={n_vars})")


def boxes(
    n_vars: int, lo: float = -3.0, hi: float = 3.0, min_width: float = 0.1
) -> Strategy:
    """A nonempty box ``(lo_vec, hi_vec)`` with per-dim width >=
    ``min_width``; shrinks toward the unit box around the origin."""

    def generate(rng: random.Random) -> Tuple[List[float], List[float]]:
        los, his = [], []
        for _ in range(n_vars):
            a = rng.uniform(lo, hi - min_width)
            b = rng.uniform(a + min_width, hi)
            los.append(a)
            his.append(b)
        return los, his

    def simplify(
        value: Tuple[List[float], List[float]]
    ) -> Iterator[Tuple[List[float], List[float]]]:
        los, his = value
        unit = ([-1.0] * n_vars, [1.0] * n_vars)
        if (los, his) != unit:
            yield unit
        yield ([round(a, 1) for a in los], [round(b, 1) for b in his])

    return Strategy(generate, simplify, f"boxes(n={n_vars})")


def semialgebraic_sets(n_vars: int) -> Strategy:
    """A compact semialgebraic region: a random box or ball (the two
    region shapes every paper benchmark uses)."""
    from repro.sets import Ball, Box

    def generate(rng: random.Random):
        if rng.random() < 0.5:
            los, his = boxes(n_vars).generate(rng)
            return Box(los, his)
        center = [rng.uniform(-1.5, 1.5) for _ in range(n_vars)]
        return Ball(center, rng.uniform(0.2, 1.5))

    return Strategy(generate, name=f"semialgebraic_sets(n={n_vars})")


def region_specs(n_vars: int = 2, max_obstacles: int = 3) -> Strategy:
    """A composed region described by :class:`repro.sets.RegionSpec`:
    a box, a ball, a union of 2-3 pieces, or a floor box with 1-3
    Box/Ball obstacles punched out.  Shrinks by dropping union pieces /
    difference obstacles, collapsing composites to their simplest
    member, and rounding geometry — so a failing composite minimizes
    toward the smallest spec that still exhibits the failure."""
    from repro.sets import RegionSpec

    def basic(rng: random.Random, tag: str) -> "RegionSpec":
        center = [round(rng.uniform(-1.5, 1.5), 3) for _ in range(n_vars)]
        if rng.random() < 0.5:
            return RegionSpec.ball(
                center, round(rng.uniform(0.2, 0.6), 3), name=tag
            )
        half = [round(rng.uniform(0.15, 0.6), 3) for _ in range(n_vars)]
        return RegionSpec.box(
            [c - h for c, h in zip(center, half)],
            [c + h for c, h in zip(center, half)],
            name=tag,
        )

    def generate(rng: random.Random) -> "RegionSpec":
        roll = rng.random()
        if roll < 0.2:
            return basic(rng, "basic")
        if roll < 0.5:
            pieces = [basic(rng, f"piece{i}") for i in range(rng.randint(2, 3))]
            return RegionSpec.union_of(*pieces, name="union")
        floor = RegionSpec.box(
            [-2.0] * n_vars, [2.0] * n_vars, name="floor"
        )
        obstacles = [
            basic(rng, f"obstacle{i}")
            for i in range(rng.randint(1, max_obstacles))
        ]
        return RegionSpec.difference(floor, *obstacles, name="difference")

    def simplify(spec: "RegionSpec") -> Iterator["RegionSpec"]:
        if spec.kind == "union":
            for i in range(len(spec.pieces)):
                rest = spec.pieces[:i] + spec.pieces[i + 1:]
                if len(rest) == 1:
                    yield rest[0]
                elif rest:
                    yield RegionSpec.union_of(*rest, name=spec.name)
        elif spec.kind == "difference":
            yield spec.base
            for i in range(len(spec.obstacles)):
                rest = spec.obstacles[:i] + spec.obstacles[i + 1:]
                if rest:
                    yield RegionSpec.difference(
                        spec.base, *rest, name=spec.name
                    )
        elif spec.kind == "ball":
            unit = RegionSpec.ball([0.0] * n_vars, 0.5, name=spec.name)
            if spec != unit:
                yield unit
        elif spec.kind == "box":
            unit = RegionSpec.box(
                [-0.5] * n_vars, [0.5] * n_vars, name=spec.name
            )
            if spec != unit:
                yield unit

    return Strategy(generate, simplify, f"region_specs(n={n_vars})")


def sdp_problems(
    max_block: int = 3, max_constraints: int = 4
) -> Strategy:
    """A *feasible* random SDP: constraints ``<A_i, X> = <A_i, X0>`` for a
    generated strictly-PD ``X0``, so ``X0`` witnesses feasibility by
    construction — any solver failure on these is a solver bug."""
    from repro.sdp import SDPProblem

    def generate(rng: random.Random):
        n = rng.randint(1, max_block)
        m = rng.randint(1, max_constraints)
        Q0 = psd_matrices(n).generate(rng)
        X0 = np.array(Q0)
        sdp = SDPProblem([n])
        sdp.set_trace_objective(1.0)
        for _ in range(m):
            A = np.array(
                [[rng.gauss(0.0, 1.0) for _ in range(n)] for _ in range(n)]
            )
            A = 0.5 * (A + A.T)
            sdp.add_constraint([A], float(np.sum(A * X0)))
        return {"sdp": sdp, "witness": X0}

    return Strategy(generate, name="sdp_problems")


def ccds_instances(max_n_vars: int = 3) -> Strategy:
    """A C1-C14-shaped safety instance: polynomial drift of degree <= 3,
    optional single constant-gain input, ball/box Theta and Xi inside a
    box domain Psi, Theta and Xi disjoint by construction."""
    from repro.dynamics import CCDS, ControlAffineSystem
    from repro.sets import Ball, Box

    def generate(rng: random.Random) -> CCDS:
        n = rng.randint(2, max_n_vars)
        drift = polynomials(n, max_degree=3, max_terms=4, coeff_lo=-1.5,
                            coeff_hi=1.5)
        f0 = [drift.generate(rng) for _ in range(n)]
        if rng.random() < 0.5:
            gains = [rng.uniform(-1.0, 1.0) for _ in range(n)]
            system = ControlAffineSystem.single_input(f0, gains)
        else:
            system = ControlAffineSystem.autonomous(f0)
        half = rng.uniform(1.5, 3.0)
        psi = Box([-half] * n, [half] * n)
        theta_c = [rng.uniform(-half / 3, half / 3) for _ in range(n)]
        theta_r = rng.uniform(0.1, half / 4)
        theta = Ball(theta_c, theta_r)
        # place Xi on a random face region of the domain, away from Theta
        axis = rng.randrange(n)
        sign = rng.choice((-1.0, 1.0))
        xi_lo, xi_hi = [-half] * n, [half] * n
        if sign > 0:
            xi_lo[axis] = half * 0.6
        else:
            xi_hi[axis] = -half * 0.6
        xi = Box(xi_lo, xi_hi)
        return CCDS(
            system=system, theta=theta, psi=psi, xi=xi,
            name=f"fuzz-n{n}",
        )

    return Strategy(generate, name="ccds_instances")


# ----------------------------------------------------------------------
# describing / dumping failures
# ----------------------------------------------------------------------
def describe(value: Any) -> Any:
    """Best-effort JSON-safe description of a generated value."""
    if isinstance(value, Polynomial):
        return {
            "polynomial": {
                "n_vars": value.n_vars,
                "coeffs": {
                    str(list(a)): c for a, c in sorted(value.coeffs.items())
                },
            }
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [describe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): describe(v) for k, v in value.items()}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def dump_repro(
    name: str, payload: Dict[str, Any], dump_dir: Optional[str] = None
) -> str:
    """Write a minimized failing example where a human (or a regression
    test) can pick it up; returns the path."""
    directory = dump_dir or os.environ.get(DUMP_DIR_ENV) or DEFAULT_DUMP_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
@dataclass
class PropertyFailure(AssertionError):
    """A property failed; carries the minimized reproduction."""

    name: str
    seed: int
    example_index: int
    minimized: Any
    original: Any
    cause: str
    dump_path: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - message formatting
        lines = [
            f"property {self.name!r} failed "
            f"(seed={self.seed}, example #{self.example_index})",
            f"  cause: {self.cause}",
            f"  minimized: {describe(self.minimized)!r}",
            f"  replay: {SEED_ENV}={self.seed}",
        ]
        if self.dump_path:
            lines.append(f"  repro dumped to: {self.dump_path}")
        return "\n".join(lines)


def run_property(
    name: str,
    strategy: Strategy,
    prop: Callable[[Any], None],
    n_examples: int = 50,
    seed: Optional[int] = None,
    max_shrink_steps: int = 200,
    dump: bool = True,
) -> int:
    """Drive ``prop`` over ``n_examples`` generated values.

    ``prop`` signals failure by raising :class:`AssertionError`; any
    other exception propagates immediately (it is a harness bug, not a
    counterexample).  The first failing value is greedily shrunk, dumped
    (when ``dump``), and re-raised as :class:`PropertyFailure`.  Returns
    the number of examples run.
    """
    seed = resolve_seed(0) if seed is None else int(seed)
    rng = random.Random(seed)
    for index in range(n_examples):
        value = strategy.generate(rng)
        try:
            prop(value)
            continue
        except AssertionError as exc:
            cause = str(exc) or type(exc).__name__

        def still_fails(candidate: Any) -> bool:
            try:
                prop(candidate)
                return False
            except AssertionError:
                return True

        minimized = greedy_shrink(
            value, strategy.simplify, still_fails, max_steps=max_shrink_steps
        )
        dump_path = None
        if dump:
            dump_path = dump_repro(
                f"{name}-seed{seed}-ex{index}",
                {
                    "property": name,
                    "seed": seed,
                    "example_index": index,
                    "cause": cause,
                    "minimized": describe(minimized),
                    "original": describe(value),
                    "replay": f"{SEED_ENV}={seed}",
                },
            )
        raise PropertyFailure(
            name=name,
            seed=seed,
            example_index=index,
            minimized=minimized,
            original=value,
            cause=cause,
            dump_path=dump_path,
        )
    return n_examples


__all__ = [
    "Strategy",
    "PropertyFailure",
    "run_property",
    "greedy_shrink",
    "resolve_seed",
    "fuzz_examples",
    "describe",
    "dump_repro",
    "integers",
    "floats",
    "sampled_from",
    "lists",
    "tuples",
    "float_arrays",
    "polynomials",
    "psd_matrices",
    "sos_polynomials",
    "boxes",
    "semialgebraic_sets",
    "region_specs",
    "sdp_problems",
    "ccds_instances",
    "SEED_ENV",
    "FUZZ_LONG_ENV",
    "DUMP_DIR_ENV",
]
