"""Certified polynomial bounds via SOS optimization.

Utility layer over :class:`~repro.sos.program.SOSProgram`'s optimization
mode: Lasserre-style lower/upper bounds of a polynomial on a compact
semialgebraic set,

    max gamma   s.t.   p - gamma - sum_i sigma_i g_i  in Sigma[x],

which certifies ``p(x) >= gamma`` on ``{g_i >= 0}``.  Used in tests to
cross-validate the verifier (e.g. the minimal Lie margin) and available as
a general library facility.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.poly import Polynomial
from repro.sdp import InteriorPointOptions
from repro.sets import SemialgebraicSet
from repro.sos.expr import SOSExpr
from repro.sos.program import SOSProgram


def sos_lower_bound(
    p: Polynomial,
    region: SemialgebraicSet,
    multiplier_degree: Optional[int] = None,
    options: Optional[InteriorPointOptions] = None,
) -> float:
    """Certified lower bound of ``p`` on ``region``.

    Returns the largest ``gamma`` (at the chosen relaxation degree) with a
    Putinar certificate for ``p - gamma >= 0`` on the region.  Raises
    ``RuntimeError`` when the relaxation is infeasible or the solver fails
    (try a larger ``multiplier_degree``).
    """
    if p.n_vars != region.n_vars:
        raise ValueError("polynomial/region dimension mismatch")
    prog = SOSProgram(p.n_vars)
    gamma = prog.free_scalar()
    expr = SOSExpr.from_polynomial(p) - gamma
    for g in region.constraints:
        deg = multiplier_degree
        if deg is None:
            deg = max(0, p.degree - g.degree)
            deg += deg % 2
        sigma = prog.sos_poly(deg)
        expr = expr - sigma * g
    prog.require_sos(expr)
    sol = prog.solve(options, minimize=-1.0 * gamma)
    if not sol.feasible:
        raise RuntimeError(f"SOS bound relaxation failed: {sol.status}")
    return float(sol.value(gamma).coeff((0,) * p.n_vars))


def sos_upper_bound(
    p: Polynomial,
    region: SemialgebraicSet,
    multiplier_degree: Optional[int] = None,
    options: Optional[InteriorPointOptions] = None,
) -> float:
    """Certified upper bound: ``-sos_lower_bound(-p, ...)``."""
    return -sos_lower_bound(
        -1.0 * p, region, multiplier_degree=multiplier_degree, options=options
    )


def sos_range(
    p: Polynomial,
    region: SemialgebraicSet,
    multiplier_degree: Optional[int] = None,
) -> Tuple[float, float]:
    """Certified enclosure ``[lower, upper]`` of ``p`` on the region.

    Typically far tighter than the natural interval extension
    (:func:`repro.poly.bounds.interval_eval`) at the price of two SDP
    solves.
    """
    return (
        sos_lower_bound(p, region, multiplier_degree),
        sos_upper_bound(p, region, multiplier_degree),
    )
