"""A-posteriori numerical validation of SOS certificates.

The interior-point solver returns floating-point Gram matrices, so the
polynomial identity

    expr(x) = m(x)^T Q m(x)

only holds up to a coefficient residual.  Following standard practice for
numerical SOS tools (and matching the paper's use of strictness margins
``epsilon_1``, ``epsilon_2``), a certificate is accepted when

1. every Gram matrix is PSD up to a small eigenvalue tolerance, and
2. the residual polynomial's magnitude over the compact domain, bounded by
   the triangle inequality, is below the available strictness margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.poly import Polynomial, abs_bound_on_box
from repro.poly.monomials import add_exponents
from repro.sos.program import GramBlock


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_sos_identity`."""

    ok: bool
    min_eigenvalue: float
    residual_bound: float
    margin: float
    notes: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def gram_polynomial(block: GramBlock, Q: np.ndarray, n_vars: int) -> Polynomial:
    """Expand ``m^T Q m`` for a Gram block into a concrete polynomial."""
    coeffs = {}
    for i, bi in enumerate(block.basis):
        for j, bj in enumerate(block.basis):
            alpha = add_exponents(bi, bj)
            coeffs[alpha] = coeffs.get(alpha, 0.0) + float(Q[i, j])
    return Polynomial(n_vars, coeffs)


def validate_sos_identity(
    expr_poly: Polynomial,
    slack_block: GramBlock,
    slack_gram: np.ndarray,
    domain_lo: Sequence[float],
    domain_hi: Sequence[float],
    margin: float,
    psd_tolerance: float = 1e-7,
    extra_grams: Optional[List[np.ndarray]] = None,
) -> ValidationReport:
    """Validate that ``expr_poly`` is (numerically) SOS on the given box.

    Parameters
    ----------
    expr_poly:
        The fully-substituted left-hand side (all decision variables solved).
    slack_block, slack_gram:
        The slack Gram block certifying ``expr_poly in Sigma[x]``.
    domain_lo, domain_hi:
        A box containing the relevant semialgebraic set; the residual is
        bounded there.
    margin:
        Strictness margin available to absorb the residual (e.g. the
        ``epsilon`` subtracted in the constraint).  Must be positive for a
        strict condition; 0 accepts only near-exact identities.
    psd_tolerance:
        Eigenvalue slack below zero tolerated for Gram matrices.
    extra_grams:
        Gram matrices of SOS multiplier variables, also checked for PSD-ness.
    """
    eigs = [float(np.linalg.eigvalsh(slack_gram)[0])]
    for Q in extra_grams or []:
        eigs.append(float(np.linalg.eigvalsh(Q)[0]))
    min_eig = min(eigs)

    realized = gram_polynomial(slack_block, slack_gram, expr_poly.n_vars)
    residual = expr_poly - realized
    res_bound = abs_bound_on_box(residual, domain_lo, domain_hi)

    # A slightly negative Gram eigenvalue perturbs m^T Q m by at most
    # |lam_min| * ||m(x)||^2; fold that into the residual bound.
    if min_eig < 0:
        basis_sq = Polynomial.zero(expr_poly.n_vars)
        for beta in slack_block.basis:
            basis_sq = basis_sq + Polynomial.monomial(
                expr_poly.n_vars, add_exponents(beta, beta)
            )
        res_bound += abs(min_eig) * abs_bound_on_box(basis_sq, domain_lo, domain_hi)

    ok = min_eig >= -psd_tolerance and res_bound <= max(margin, 0.0) + 1e-12
    notes = ""
    if min_eig < -psd_tolerance:
        notes = f"Gram matrix not PSD (min eig {min_eig:.3e})"
    elif res_bound > margin:
        notes = f"residual bound {res_bound:.3e} exceeds margin {margin:.3e}"
    return ValidationReport(
        ok=ok,
        min_eigenvalue=min_eig,
        residual_bound=res_bound,
        margin=margin,
        notes=notes,
    )
