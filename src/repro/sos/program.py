"""SOS feasibility programs compiled to block-diagonal SDPs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import null_space

from repro.poly import Polynomial
from repro.poly.monomials import Exponent, add_exponents, monomials_upto
from repro.sdp import (
    InteriorPointOptions,
    SDPProblem,
    SDPResult,
    SDPStatus,
    solve_sdp,
)
from repro.sdp.svec import svec_dim
from repro.sos.expr import GramKey, LinCoeff, SOSExpr

_SQRT2 = float(np.sqrt(2.0))


@dataclass
class GramBlock:
    """One SOS polynomial variable ``m(x)^T Q m(x)`` with PSD Gram ``Q``."""

    block_id: int
    basis: Tuple[Exponent, ...]
    label: str = ""

    @property
    def size(self) -> int:
        return len(self.basis)


class SOSProgram:
    """Declarative SOS feasibility program.

    Typical use for sub-problem (13) of the paper::

        prog = SOSProgram(n_vars)
        sigmas = [prog.sos_poly(2) for _ in theta]          # SOS multipliers
        expr = SOSExpr.from_polynomial(B)
        for s, g in zip(sigmas, theta):
            expr = expr - s * g
        prog.require_sos(expr)
        sol = prog.solve()
        if sol.feasible:
            sigma_polys = [sol.value(s) for s in sigmas]
    """

    def __init__(self, n_vars: int):
        if n_vars < 1:
            raise ValueError("n_vars must be positive")
        self.n_vars = int(n_vars)
        self._blocks: List[GramBlock] = []
        self._n_free = 0
        self._constraints: List[Tuple[SOSExpr, Optional[int]]] = []  # (expr, slack block)

    # ------------------------------------------------------------------
    # variable declaration
    # ------------------------------------------------------------------
    def _new_block(self, half_degree: int, label: str) -> GramBlock:
        basis = monomials_upto(self.n_vars, half_degree)
        block = GramBlock(len(self._blocks), basis, label)
        self._blocks.append(block)
        return block

    def sos_poly(self, degree: int, label: str = "") -> SOSExpr:
        """A new SOS polynomial variable of degree <= ``degree`` (rounded even).

        Returned as the symbolic expansion ``m^T Q m`` over the monomial
        basis ``[x]_{degree/2}``.
        """
        if degree < 0:
            raise ValueError("degree must be nonnegative")
        half = (degree + 1) // 2
        block = self._new_block(half, label or f"sos{len(self._blocks)}")
        coeffs: Dict[Exponent, LinCoeff] = {}
        for i, bi in enumerate(block.basis):
            for j in range(i, block.size):
                alpha = add_exponents(bi, block.basis[j])
                weight = 1.0 if i == j else 2.0
                key: GramKey = (block.block_id, i, j)
                lc = coeffs.setdefault(alpha, LinCoeff())
                lc.gram[key] = lc.gram.get(key, 0.0) + weight
        return SOSExpr(self.n_vars, coeffs)

    def free_poly(self, degree: int, label: str = "") -> SOSExpr:
        """A new free (sign-unconstrained) polynomial of degree <= ``degree``."""
        if degree < 0:
            raise ValueError("degree must be nonnegative")
        coeffs: Dict[Exponent, LinCoeff] = {}
        for alpha in monomials_upto(self.n_vars, degree):
            fid = self._n_free
            self._n_free += 1
            coeffs[alpha] = LinCoeff(free={fid: 1.0})
        return SOSExpr(self.n_vars, coeffs)

    def free_scalar(self) -> SOSExpr:
        """A single free scalar decision variable (a degree-0 free poly)."""
        return self.free_poly(0)

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def require_sos(self, expr: SOSExpr, half_degree: Optional[int] = None) -> GramBlock:
        """Require ``expr in Sigma[x]`` by introducing a slack Gram block."""
        if expr.n_vars != self.n_vars:
            raise ValueError("expression variable count mismatch")
        if half_degree is None:
            half_degree = (expr.degree + 1) // 2
        block = self._new_block(half_degree, f"slack{len(self._constraints)}")
        self._constraints.append((expr, block.block_id))
        return block

    def require_zero(self, expr: SOSExpr) -> None:
        """Require ``expr == 0`` coefficient-wise."""
        if expr.n_vars != self.n_vars:
            raise ValueError("expression variable count mismatch")
        self._constraints.append((expr, None))

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _svec_index(self, size: int, i: int, j: int) -> int:
        """Index of upper-triangular entry (i, j), i <= j, in svec ordering."""
        return i * size - (i * (i - 1)) // 2 + (j - i)

    def compile(
        self, objective: Optional[LinCoeff] = None
    ) -> Tuple[SDPProblem, np.ndarray, np.ndarray, np.ndarray]:
        """Build the SDP.

        Returns ``(sdp, B_free, rhs_rows, G_rows)`` where the raw equality
        system is ``G_rows . svec(Q_all) + B_free . f = rhs_rows`` and the SDP
        already contains the free-variable-eliminated (nullspace-projected)
        rows.

        With ``objective`` (an affine expression over decision variables to
        *minimize*), the free-variable part is rewritten through the
        least-squares recovery map ``f = B^+ (r - G q)`` so the whole
        objective becomes linear in the PSD blocks; a feasibility-style
        trace objective is used otherwise.
        """
        if not self._constraints:
            raise ValueError("program has no constraints")
        block_sizes = [blk.size for blk in self._blocks]
        svec_dims = [svec_dim(s) for s in block_sizes]
        offsets = np.concatenate([[0], np.cumsum(svec_dims)])
        total_svec = int(offsets[-1])

        rows_G: List[np.ndarray] = []
        rows_B: List[np.ndarray] = []
        rhs: List[float] = []

        for expr, slack_id in self._constraints:
            # union of monomials: expression support plus everything the
            # slack block can produce
            alphas = set(expr.coeffs)
            if slack_id is not None:
                basis = self._blocks[slack_id].basis
                for i, bi in enumerate(basis):
                    for j in range(i, len(basis)):
                        alphas.add(add_exponents(bi, basis[j]))
            slack_pairs: Dict[Exponent, List[Tuple[int, int]]] = {}
            if slack_id is not None:
                basis = self._blocks[slack_id].basis
                for i, bi in enumerate(basis):
                    for j in range(i, len(basis)):
                        slack_pairs.setdefault(add_exponents(bi, basis[j]), []).append((i, j))

            for alpha in sorted(alphas):
                g_row = np.zeros(total_svec)
                b_row = np.zeros(self._n_free)
                c0 = 0.0
                lc = expr.coeffs.get(alpha)
                if lc is not None:
                    # equation: slack_gram(alpha) - expr(alpha) = 0
                    c0 = lc.const
                    for fid, v in lc.free.items():
                        b_row[fid] -= v
                    for (bid, i, j), v in lc.gram.items():
                        size = block_sizes[bid]
                        idx = int(offsets[bid]) + self._svec_index(size, i, j)
                        # combined coefficient v on Q_ij: svec coordinate is
                        # v for diagonal, v / sqrt(2) off-diagonal
                        g_row[idx] -= v if i == j else v / _SQRT2
                for (i, j) in slack_pairs.get(alpha, ()):  # + m^T Q m term
                    size = block_sizes[slack_id]
                    idx = int(offsets[slack_id]) + self._svec_index(size, i, j)
                    weight = 1.0 if i == j else 2.0
                    g_row[idx] += weight if i == j else weight / _SQRT2
                if slack_id is None and not np.any(g_row) and not np.any(b_row):
                    # pure constant row: must be zero for consistency
                    rows_G.append(g_row)
                    rows_B.append(b_row)
                    rhs.append(c0)
                    continue
                rows_G.append(g_row)
                rows_B.append(b_row)
                rhs.append(c0)

        G = np.array(rows_G)
        Bf = np.array(rows_B).reshape(len(rows_G), self._n_free)
        r = np.array(rhs)

        # eliminate free scalars: project onto null(Bf^T)
        if self._n_free > 0 and Bf.size:
            N = null_space(Bf.T)
        else:
            N = np.eye(len(rows_G))
        G_proj = N.T @ G
        r_proj = N.T @ r

        sdp = SDPProblem(block_sizes)
        if objective is None:
            sdp.set_trace_objective(1.0)
        else:
            c_vec = np.zeros(total_svec)
            # gram part: coefficient c on Q_{b,i,j} (combined convention)
            for (bid, i, j), v in objective.gram.items():
                idx = int(offsets[bid]) + self._svec_index(block_sizes[bid], i, j)
                c_vec[idx] += v if i == j else v / _SQRT2
            # free part via the least-squares recovery map f = B^+ (r - G q)
            if objective.free:
                cf = np.zeros(self._n_free)
                for fid, v in objective.free.items():
                    cf[fid] = v
                if self._n_free and Bf.size:
                    Bplus = np.linalg.pinv(Bf)
                    # a cost component along null(B) would make the
                    # objective depend on an unconstrained variable
                    resid = cf - Bf.T @ (Bplus.T @ cf)
                    if np.linalg.norm(resid) > 1e-8 * max(1.0, np.linalg.norm(cf)):
                        raise ValueError(
                            "objective depends on a free variable the "
                            "constraints do not determine (unbounded)"
                        )
                    c_vec -= G.T @ (Bplus.T @ cf)
            C_blocks = [
                _smat_of(c_vec[offsets[k] : offsets[k + 1]], block_sizes[k])
                for k in range(len(block_sizes))
            ]
            sdp.set_objective(C_blocks)
        for i in range(G_proj.shape[0]):
            svecs = [
                G_proj[i, offsets[k] : offsets[k + 1]] for k in range(len(block_sizes))
            ]
            sdp.add_constraint_svec(svecs, float(r_proj[i]))
        return sdp, Bf, r, G

    # ------------------------------------------------------------------
    def solve(
        self,
        options: Optional[InteriorPointOptions] = None,
        minimize: Optional[SOSExpr] = None,
    ) -> "SOSSolution":
        """Compile and solve; recover free variables by least squares.

        ``minimize`` turns the feasibility program into an optimization: it
        must be a degree-0 expression (a scalar affine combination of
        decision variables), e.g. ``-gamma`` to maximize a bound ``gamma``.
        """
        objective: Optional[LinCoeff] = None
        if minimize is not None:
            if minimize.degree != 0:
                raise ValueError("objective must be a scalar (degree-0) expression")
            zero = (0,) * self.n_vars
            objective = minimize.coeffs.get(zero, LinCoeff())
        sdp, Bf, r, G = self.compile(objective=objective)
        result = solve_sdp(sdp, options)
        free_values = np.zeros(self._n_free)
        if result.status.ok and self._n_free > 0:
            q_flat = np.concatenate(
                [_svec_of(X) for X in result.X]
            )
            resid = r - G @ q_flat
            free_values, *_ = np.linalg.lstsq(Bf, resid, rcond=None)
        return SOSSolution(self, result, free_values)


def _svec_of(X: np.ndarray) -> np.ndarray:
    from repro.sdp.svec import svec

    return svec(X)


def _smat_of(v: np.ndarray, n: int) -> np.ndarray:
    from repro.sdp.svec import smat

    return smat(v, n)


class SOSSolution:
    """Solved SOS program: extract concrete polynomials from expressions."""

    def __init__(self, program: SOSProgram, sdp_result: SDPResult, free_values: np.ndarray):
        self.program = program
        self.sdp_result = sdp_result
        self.free_values = free_values

    @property
    def feasible(self) -> bool:
        """True when the interior-point solver reached (near-)optimality."""
        return self.sdp_result.status.ok

    @property
    def status(self) -> SDPStatus:
        return self.sdp_result.status

    def gram(self, block_id: int) -> np.ndarray:
        """Gram matrix of block ``block_id``."""
        return self.sdp_result.X[block_id]

    def gram_blocks(self) -> List[np.ndarray]:
        return list(self.sdp_result.X)

    def value(self, expr: SOSExpr) -> Polynomial:
        """Substitute solved decision variables into an expression."""
        if not self.feasible:
            raise RuntimeError("cannot extract values from an infeasible program")
        coeffs: Dict[Exponent, float] = {}
        for alpha, lc in expr.coeffs.items():
            v = lc.const
            for fid, c in lc.free.items():
                v += c * float(self.free_values[fid])
            for (bid, i, j), c in lc.gram.items():
                v += c * float(self.sdp_result.X[bid][i, j])
            if v != 0.0:
                coeffs[alpha] = v
        return Polynomial(expr.n_vars, coeffs)

    def slack_polynomial(self, block: GramBlock) -> Polynomial:
        """The SOS polynomial realized by a (slack) Gram block."""
        Q = self.sdp_result.X[block.block_id]
        coeffs: Dict[Exponent, float] = {}
        for i, bi in enumerate(block.basis):
            for j, bj in enumerate(block.basis):
                alpha = add_exponents(bi, bj)
                coeffs[alpha] = coeffs.get(alpha, 0.0) + Q[i, j]
        return Polynomial(self.program.n_vars, coeffs)
