"""Sum-of-squares programming on top of :mod:`repro.sdp`.

This layer compiles Putinar-style SOS feasibility problems — the LMI
sub-problems (13)-(15) of the paper — into block-diagonal SDPs:

* :class:`~repro.sos.expr.SOSExpr` — polynomials whose coefficients are
  affine in scalar decision variables and Gram-matrix entries (products of
  two unknowns are rejected, which is exactly the BMI non-convexity the
  paper's candidate-then-check scheme avoids);
* :class:`~repro.sos.program.SOSProgram` — declares SOS / free polynomial
  variables, accumulates ``expr in Sigma[x]`` constraints, eliminates free
  scalars by nullspace projection and calls the interior-point solver;
* :mod:`~repro.sos.validate` — a-posteriori numerical validation of the
  returned Gram matrices (eigenvalue margin + coefficient residual bound).
"""

from repro.sos.expr import SOSExpr
from repro.sos.program import SOSProgram, SOSSolution
from repro.sos.validate import ValidationReport, validate_sos_identity
from repro.sos.bounds import sos_lower_bound, sos_range, sos_upper_bound

__all__ = [
    "SOSExpr",
    "SOSProgram",
    "SOSSolution",
    "ValidationReport",
    "validate_sos_identity",
    "sos_lower_bound",
    "sos_upper_bound",
    "sos_range",
]
