"""Cached SOS workspaces for repeated Putinar feasibility checks.

The verifier solves the same three sub-problem *shapes* every CEGIS
iteration: only the candidate ``B``'s coefficients change, while the
monomial bases, Gram block structure, multiplier degrees and the
constraint rows contributed by ``- sum_i sigma_i g_i`` plus the slack
block depend solely on (region, degrees).  A :class:`ConditionWorkspace`
builds that structural *template* once and per iteration only refreshes
the affine data: the right-hand side (from the known part of the
expression) and the free-variable columns (from ``- lambda * B``).

Result identity with the uncached :meth:`SOSProgram.compile` path is by
construction: the template rows are accumulated with the same float
operations in the same order the fresh compile would perform (the gram
dictionaries merge in identical insertion order), the varying data
lands in disjoint array slots (const -> rhs, free -> B-columns), and
the projection / SDP assembly / free-variable recovery mirror
``SOSProgram.compile``/``solve`` line for line.  The only shortcut is
skipping the multiply-by-identity projection when there are no free
variables, which is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import null_space

from repro.poly import Polynomial
from repro.poly.monomials import Exponent, add_exponents, monomials_upto
from repro.sdp import InteriorPointOptions, SDPProblem, solve_sdp
from repro.sdp.svec import svec, svec_dim
from repro.sos.expr import LinCoeff, SOSExpr
from repro.sos.program import GramBlock, SOSProgram, SOSSolution, _SQRT2


def lambda_expr(n_vars: int, degree: int) -> SOSExpr:
    """The free multiplier expression ``free_poly`` would declare.

    Free-variable ids are allocated ``0..k-1`` in ``monomials_upto``
    order in every :class:`SOSProgram`, so this expression is identical
    across program instances and can be shared by cached workspaces.
    """
    coeffs: Dict[Exponent, LinCoeff] = {}
    for fid, alpha in enumerate(monomials_upto(n_vars, degree)):
        coeffs[alpha] = LinCoeff(free={fid: 1.0})
    return SOSExpr(n_vars, coeffs)


class ConditionWorkspace:
    """Structural cache for one Putinar check ``expr - sum sigma_i g_i
    (- lambda B) - margin in SOS``.

    Parameters fix everything except the affine data: the region
    constraints, per-constraint multiplier degrees, and the free
    multiplier degree (``None`` for conditions without ``lambda``).
    """

    def __init__(
        self,
        n_vars: int,
        constraints: Sequence[Polynomial],
        multiplier_degrees: Sequence[int],
        lambda_degree: Optional[int],
    ):
        self.n_vars = int(n_vars)
        self.constraints = list(constraints)
        self.multiplier_degrees = tuple(int(d) for d in multiplier_degrees)
        self.lambda_degree = lambda_degree
        # declare the multipliers exactly as the fresh path would
        prog = SOSProgram(n_vars)
        self.multipliers: List[SOSExpr] = []
        template = SOSExpr.zero(n_vars)
        for g, deg in zip(self.constraints, self.multiplier_degrees):
            s = prog.sos_poly(deg, label="sigma")
            self.multipliers.append(s)
            template = template - s * g
        self.lam_expr: Optional[SOSExpr] = None
        if lambda_degree is not None:
            self.lam_expr = prog.free_poly(int(lambda_degree), label="lambda")
        self.program = prog
        self._mult_blocks = list(prog._blocks)
        self._template = template
        self.template_degree = template.degree
        self._slack_half: Optional[int] = None
        self.slack_block: Optional[GramBlock] = None
        # per-alpha structural rows, rebuilt when the slack degree changes
        self._rows: Dict[Exponent, np.ndarray] = {}
        self._block_sizes: List[int] = []
        self._offsets: Optional[np.ndarray] = None
        self._total_svec = 0

    # ------------------------------------------------------------------
    def matches(
        self,
        multiplier_degrees: Sequence[int],
        lambda_degree: Optional[int],
    ) -> bool:
        return (
            tuple(int(d) for d in multiplier_degrees) == self.multiplier_degrees
            and lambda_degree == self.lambda_degree
        )

    # ------------------------------------------------------------------
    def _ensure_slack(self, slack_half: int) -> None:
        """(Re)build the slack block and the structural template rows."""
        if self._slack_half == slack_half:
            return
        self._slack_half = slack_half
        basis = tuple(monomials_upto(self.n_vars, slack_half))
        slack = GramBlock(len(self._mult_blocks), basis, "slack0")
        self.slack_block = slack
        self.program._blocks = self._mult_blocks + [slack]
        block_sizes = [blk.size for blk in self.program._blocks]
        svec_dims = [svec_dim(s) for s in block_sizes]
        offsets = np.concatenate([[0], np.cumsum(svec_dims)])
        self._block_sizes = block_sizes
        self._offsets = offsets
        self._total_svec = int(offsets[-1])

        slack_pairs: Dict[Exponent, List[Tuple[int, int]]] = {}
        for i, bi in enumerate(basis):
            for j in range(i, len(basis)):
                slack_pairs.setdefault(add_exponents(bi, basis[j]), []).append(
                    (i, j)
                )
        svec_index = SOSProgram._svec_index
        rows: Dict[Exponent, np.ndarray] = {}
        for alpha in set(self._template.coeffs) | set(slack_pairs):
            row = np.zeros(self._total_svec)
            lc = self._template.coeffs.get(alpha)
            if lc is not None:
                # same accumulation the fresh compile performs for the
                # gram part of the combined expression
                for (bid, i, j), v in lc.gram.items():
                    size = block_sizes[bid]
                    idx = int(offsets[bid]) + svec_index(None, size, i, j)
                    row[idx] -= v if i == j else v / _SQRT2
            for (i, j) in slack_pairs.get(alpha, ()):
                size = block_sizes[slack.block_id]
                idx = int(offsets[slack.block_id]) + svec_index(None, size, i, j)
                weight = 1.0 if i == j else 2.0
                row[idx] += weight if i == j else weight / _SQRT2
            rows[alpha] = row
        self._rows = rows

    # ------------------------------------------------------------------
    def compile(
        self, varying: SOSExpr
    ) -> Tuple[SDPProblem, np.ndarray, np.ndarray, np.ndarray]:
        """Refresh the affine data for ``varying`` (the known polynomial
        part plus any ``- lambda * B`` free contribution) and build the
        SDP; same return contract as :meth:`SOSProgram.compile`.

        ``varying`` must carry no Gram entries — all Gram structure lives
        in the cached template.
        """
        slack_half = (max(self.template_degree, varying.degree) + 1) // 2
        self._ensure_slack(slack_half)
        n_free = self.program._n_free
        alphas = sorted(set(self._rows) | set(varying.coeffs))
        m = len(alphas)
        G = np.zeros((m, self._total_svec))
        Bf = np.zeros((m, n_free))
        r = np.zeros(m)
        for i, alpha in enumerate(alphas):
            row = self._rows.get(alpha)
            if row is not None:
                G[i] = row
            lc = varying.coeffs.get(alpha)
            if lc is not None:
                if lc.gram:
                    raise ValueError(
                        "varying expression must not carry Gram entries"
                    )
                r[i] = lc.const
                for fid, v in lc.free.items():
                    Bf[i, fid] -= v
        if n_free > 0 and Bf.size:
            N = null_space(Bf.T)
            G_proj = N.T @ G
            r_proj = N.T @ r
        else:
            # fresh compile multiplies by the identity here; skipping the
            # no-op matmul is exact
            G_proj, r_proj = G, r
        sdp = SDPProblem(self._block_sizes)
        sdp.set_trace_objective(1.0)
        # bulk add: same row data as the per-row add_constraint_svec loop
        # (bitwise-identical solves) and G_proj doubles as the problem's
        # stacked constraint-matrix memo, skipping re-concatenation
        sdp.add_constraints_from_matrix(G_proj, r_proj)
        return sdp, Bf, r, G

    def solve(
        self,
        varying: SOSExpr,
        options: Optional[InteriorPointOptions] = None,
    ) -> SOSSolution:
        """Compile, solve and recover free variables (serial convenience)."""
        sdp, Bf, r, G = self.compile(varying)
        result = solve_sdp(sdp, options)
        free_values = np.zeros(self.program._n_free)
        if result.status.ok and self.program._n_free > 0:
            q_flat = np.concatenate([svec(X) for X in result.X])
            resid = r - G @ q_flat
            free_values, *_ = np.linalg.lstsq(Bf, resid, rcond=None)
        return SOSSolution(self.program, result, free_values)
