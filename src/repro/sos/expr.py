"""Polynomial expressions affine in SOS decision variables.

An :class:`SOSExpr` is a polynomial whose coefficients are *affine*
expressions in two kinds of decision variables:

* scalar free variables (coefficients of free polynomials such as the
  multiplier ``lambda(x)`` in sub-problem (15)), and
* Gram matrix entries of SOS polynomial variables (the ``sigma_i``,
  ``delta_i``, ``phi_i`` multipliers of (13)-(15)).

Affinity is what makes the paper's verification step convex: multiplying two
expressions that both contain decision variables would create a bilinear
(BMI) term, and this module raises immediately when that happens.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.poly import Polynomial
from repro.poly.monomials import Exponent, add_exponents

Scalar = Union[int, float, np.floating]
GramKey = Tuple[int, int, int]  # (block_id, i, j) with i <= j


class LinCoeff:
    """An affine expression ``const + sum c_f * f + sum c_g * Q_g``.

    Gram keys ``(block, i, j)`` with ``i < j`` denote the *combined*
    symmetric contribution (i.e. a coefficient ``c`` means ``c * Q_ij`` with
    ``Q`` symmetric, both triangle entries already accounted for).
    """

    __slots__ = ("const", "free", "gram")

    def __init__(
        self,
        const: float = 0.0,
        free: Dict[int, float] = None,
        gram: Dict[GramKey, float] = None,
    ):
        self.const = float(const)
        self.free = dict(free) if free else {}
        self.gram = dict(gram) if gram else {}

    def copy(self) -> "LinCoeff":
        return LinCoeff(self.const, self.free, self.gram)

    def add_inplace(self, other: "LinCoeff", scale: float = 1.0) -> None:
        self.const += scale * other.const
        for k, v in other.free.items():
            self.free[k] = self.free.get(k, 0.0) + scale * v
        for k, v in other.gram.items():
            self.gram[k] = self.gram.get(k, 0.0) + scale * v

    def scaled(self, scale: float) -> "LinCoeff":
        return LinCoeff(
            self.const * scale,
            {k: v * scale for k, v in self.free.items()},
            {k: v * scale for k, v in self.gram.items()},
        )

    @property
    def is_constant(self) -> bool:
        return not self.free and not self.gram

    def is_trivial(self, tol: float = 0.0) -> bool:
        return (
            abs(self.const) <= tol
            and all(abs(v) <= tol for v in self.free.values())
            and all(abs(v) <= tol for v in self.gram.values())
        )

    def __repr__(self) -> str:
        return f"LinCoeff(const={self.const}, free={self.free}, gram={self.gram})"


class SOSExpr:
    """A polynomial with :class:`LinCoeff` coefficients."""

    __slots__ = ("n_vars", "coeffs")

    def __init__(self, n_vars: int, coeffs: Dict[Exponent, LinCoeff] = None):
        self.n_vars = int(n_vars)
        self.coeffs: Dict[Exponent, LinCoeff] = coeffs if coeffs is not None else {}

    # ------------------------------------------------------------------
    @classmethod
    def from_polynomial(cls, p: Polynomial) -> "SOSExpr":
        """Lift a known polynomial into a constant expression."""
        return cls(p.n_vars, {a: LinCoeff(c) for a, c in p.coeffs.items()})

    @classmethod
    def zero(cls, n_vars: int) -> "SOSExpr":
        return cls(n_vars, {})

    @property
    def degree(self) -> int:
        """Max total degree over the (possibly symbolic) support."""
        if not self.coeffs:
            return 0
        return max(sum(a) for a in self.coeffs)

    def has_decision_variables(self) -> bool:
        return any(not c.is_constant for c in self.coeffs.values())

    def constant_part(self) -> Polynomial:
        """The known-polynomial part (decision variables set to 0)."""
        return Polynomial(self.n_vars, {a: c.const for a, c in self.coeffs.items()})

    # ------------------------------------------------------------------
    def _coerce(self, other) -> "SOSExpr":
        if isinstance(other, SOSExpr):
            return other
        if isinstance(other, Polynomial):
            return SOSExpr.from_polynomial(other)
        if isinstance(other, (int, float, np.floating)):
            return SOSExpr.from_polynomial(Polynomial.constant(self.n_vars, other))
        raise TypeError(f"cannot combine SOSExpr with {type(other).__name__}")

    def __add__(self, other) -> "SOSExpr":
        other = self._coerce(other)
        if other.n_vars != self.n_vars:
            raise ValueError("variable count mismatch")
        out = {a: c.copy() for a, c in self.coeffs.items()}
        for a, c in other.coeffs.items():
            if a in out:
                out[a].add_inplace(c)
            else:
                out[a] = c.copy()
        return SOSExpr(self.n_vars, out)

    def __radd__(self, other) -> "SOSExpr":
        return self.__add__(other)

    def __neg__(self) -> "SOSExpr":
        return SOSExpr(self.n_vars, {a: c.scaled(-1.0) for a, c in self.coeffs.items()})

    def __sub__(self, other) -> "SOSExpr":
        return self.__add__(self._coerce(other).__neg__())

    def __rsub__(self, other) -> "SOSExpr":
        return self.__neg__().__add__(other)

    def __mul__(self, other) -> "SOSExpr":
        """Multiply by a scalar or a *known* polynomial.

        Multiplying two symbolic expressions is a BMI and raises.
        """
        if isinstance(other, (int, float, np.floating)):
            return SOSExpr(
                self.n_vars, {a: c.scaled(float(other)) for a, c in self.coeffs.items()}
            )
        if isinstance(other, SOSExpr):
            if other.has_decision_variables() and self.has_decision_variables():
                raise ValueError(
                    "product of two symbolic SOS expressions is bilinear (BMI); "
                    "the paper's convex verification requires one factor known"
                )
            if not other.has_decision_variables():
                other = other.constant_part()
            else:  # self is the constant one
                return other.__mul__(self.constant_part())
        if isinstance(other, Polynomial):
            if other.n_vars != self.n_vars:
                raise ValueError("variable count mismatch")
            out: Dict[Exponent, LinCoeff] = {}
            for a1, c1 in self.coeffs.items():
                for a2, k in other.coeffs.items():
                    alpha = add_exponents(a1, a2)
                    if alpha in out:
                        out[alpha].add_inplace(c1, scale=k)
                    else:
                        out[alpha] = c1.scaled(k)
            return SOSExpr(self.n_vars, out)
        raise TypeError(f"cannot multiply SOSExpr by {type(other).__name__}")

    def __rmul__(self, other) -> "SOSExpr":
        return self.__mul__(other)

    def __repr__(self) -> str:
        return (
            f"SOSExpr(n_vars={self.n_vars}, n_terms={len(self.coeffs)}, "
            f"degree={self.degree})"
        )
