"""Shared result types for the baseline tools."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.poly import Polynomial


class BaselineStatus(enum.Enum):
    """How a baseline run ended (mirrors Table 1's cell markings)."""

    SUCCESS = "success"
    TIMEOUT = "OT"  # Table 1's "OT": over the time budget
    INFEASIBLE = "x"  # Table 1's "x": no certificate within degree bounds
    FAILED = "failed"


@dataclass
class BaselineResult:
    """Uniform outcome record across FOSSIL / NNCChecker / SOSTOOLS runs."""

    tool: str
    status: BaselineStatus
    barrier: Optional[Polynomial] = None
    #: the multiplier lambda used/found alongside the barrier (when any)
    multiplier: Optional[Polynomial] = None
    degree: Optional[int] = None
    iterations: int = 0
    learn_seconds: float = 0.0
    verify_seconds: float = 0.0
    total_seconds: float = 0.0
    message: str = ""

    @property
    def success(self) -> bool:
        return self.status is BaselineStatus.SUCCESS

    def table_cells(self) -> dict:
        """Columns in Table 1's per-tool layout."""
        mark = {
            BaselineStatus.SUCCESS: "ok",
            BaselineStatus.TIMEOUT: "OT",
            BaselineStatus.INFEASIBLE: "x",
            BaselineStatus.FAILED: "x",
        }[self.status]
        return {
            "d_B": self.degree if self.success else None,
            "iters": self.iterations if self.success else None,
            "T_l": self.learn_seconds if self.success else None,
            "T_v": self.verify_seconds if self.success else None,
            "T_e": self.total_seconds if self.success else mark,
        }
