"""FOSSIL-style baseline: NN Learner + SMT-style interval Verifier.

FOSSIL (Abate et al., HSCC'21) runs a CEGIS loop where a neural barrier
candidate is checked by an SMT solver over nonlinear real arithmetic; the
solver's models become counterexamples.  This reimplementation keeps the
same Learner as SNBC (the candidate is still an exactly-polynomial
quadratic network) but verifies with the branch-and-prune delta-decision
engine — and, faithfully to FOSSIL, reasons about the *actual NN
controller* inside the Lie derivative rather than a polynomial inclusion.

The interval verifier's cost grows exponentially with dimension, which is
exactly the Table 1 phenomenon (FOSSIL rows time out for ``n_x >= 5``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.common import BaselineResult, BaselineStatus
from repro.controllers import NNController
from repro.dynamics import CCDS
from repro.learner import BarrierLearner, LearnerConfig, TrainingData
from repro.poly import Polynomial, lie_derivative
from repro.sets import SemialgebraicSet
from repro.smt import (
    BranchAndPrune,
    CheckStatus,
    Interval,
    MeanValueEnclosure,
    mlp_interval_forward,
    poly_enclosure,
)


@dataclass
class FossilConfig:
    """Budget and precision knobs for the FOSSIL-style loop."""

    max_iterations: int = 10
    n_samples: int = 500
    delta: float = 1e-2
    max_boxes_per_check: int = 60_000
    time_limit: float = 300.0  # overall wall-clock budget (the paper's OT)
    n_cex_points: int = 30
    cex_radius: float = 0.1
    seed: int = 0


class FossilBaseline:
    """CEGIS with an interval/SMT-style verifier (dReal substitute)."""

    def __init__(
        self,
        problem: CCDS,
        controller: Optional[NNController] = None,
        learner_config: Optional[LearnerConfig] = None,
        config: Optional[FossilConfig] = None,
    ):
        self.problem = problem
        self.controller = controller
        if problem.system.n_inputs > 0 and controller is None:
            raise ValueError("a controlled system needs a controller")
        self.config = config or FossilConfig()
        self.learner_config = learner_config or LearnerConfig(seed=self.config.seed)
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _lie_enclosure_fn(self, B: Polynomial, lam: Polynomial):
        """Interval extension of the Lie margin with the NN in the loop."""
        system = self.problem.system
        grad = B.grad()
        drift_term = Polynomial.zero(B.n_vars)
        for i, g in enumerate(grad):
            drift_term = drift_term + g * system.f0[i]
        gain_polys = system.input_gain_polys(grad)
        margin_base = drift_term - lam * B
        base_enclosure = MeanValueEnclosure(margin_base)

        def enclosure(lo: np.ndarray, hi: np.ndarray) -> Interval:
            total = base_enclosure(lo, hi)
            if system.n_inputs:
                u_lo, u_hi = mlp_interval_forward(self.controller.net, lo, hi)
                for j, gp in enumerate(gain_polys):
                    total = total + poly_enclosure(gp, lo, hi) * Interval(
                        float(u_lo[j]), float(u_hi[j])
                    )
            return total

        def point_eval(pts: np.ndarray) -> np.ndarray:
            vals = margin_base(pts)
            if system.n_inputs:
                u = self.controller(pts)
                for j, gp in enumerate(gain_polys):
                    vals = vals + gp(pts) * u[:, j]
            return vals

        return enclosure, point_eval

    def _region_callbacks(self, region: SemialgebraicSet):
        enclosures = [
            (lambda a, b, g=g: poly_enclosure(g, a, b)) for g in region.constraints
        ]
        return enclosures, lambda pts: region.contains(pts)

    def _check_condition(
        self, name: str, B: Polynomial, lam: Polynomial, engine: BranchAndPrune
    ):
        if name == "init":
            region = self.problem.theta
            enc = MeanValueEnclosure(B)
            pe = lambda pts: B(pts)
        elif name == "unsafe":
            region = self.problem.xi
            minus_b = -1.0 * B - 1e-6
            enc = MeanValueEnclosure(minus_b)
            pe = lambda pts: minus_b(pts)
        else:  # lie
            region = self.problem.psi
            enc, pe = self._lie_enclosure_fn(B, lam)
        region_encs, region_pt = self._region_callbacks(region)
        lo, hi = region.bounding_box
        return engine.check_forall(
            enc, pe, lo, hi, region_enclosures=region_encs, region_point=region_pt
        )

    # ------------------------------------------------------------------
    def run(self) -> BaselineResult:
        cfg = self.config
        t_start = time.perf_counter()
        data = TrainingData.sample(self.problem, cfg.n_samples, rng=self.rng)
        learner = BarrierLearner(self.problem.n_vars, self.learner_config)

        t_learn = 0.0
        t_verify = 0.0
        for iteration in range(1, cfg.max_iterations + 1):
            if time.perf_counter() - t_start > cfg.time_limit:
                return BaselineResult(
                    tool="fossil",
                    status=BaselineStatus.TIMEOUT,
                    iterations=iteration - 1,
                    learn_seconds=t_learn,
                    verify_seconds=t_verify,
                    total_seconds=time.perf_counter() - t_start,
                    message="time budget exhausted",
                )
            t0 = time.perf_counter()
            terms = self._fit(learner, data)
            t_learn += time.perf_counter() - t0

            B, lam = learner.candidate()
            t0 = time.perf_counter()
            remaining = max(1.0, cfg.time_limit - (time.perf_counter() - t_start))
            engine = BranchAndPrune(
                delta=cfg.delta,
                max_boxes=cfg.max_boxes_per_check,
                time_limit=remaining / 3.0,
                rng=self.rng,
            )
            outcomes = {}
            for cond in ("init", "unsafe", "lie"):
                outcomes[cond] = self._check_condition(cond, B, lam, engine)
                if outcomes[cond].status is not CheckStatus.PROVED:
                    break
            t_verify += time.perf_counter() - t0

            if all(
                o.status is CheckStatus.PROVED for o in outcomes.values()
            ) and len(outcomes) == 3:
                return BaselineResult(
                    tool="fossil",
                    status=BaselineStatus.SUCCESS,
                    barrier=B,
                    degree=B.degree,
                    iterations=iteration,
                    learn_seconds=t_learn,
                    verify_seconds=t_verify,
                    total_seconds=time.perf_counter() - t_start,
                )

            # counterexamples: SMT witnesses (or unknown -> treat as timeout)
            progressed = False
            for cond, outcome in outcomes.items():
                if outcome.status in (CheckStatus.VIOLATED, CheckStatus.DELTA_SAT):
                    if outcome.witness is None:
                        continue
                    points = self._cex_ball(outcome.witness, cond)
                    if cond == "init":
                        data.add_init(points)
                    elif cond == "unsafe":
                        data.add_unsafe(points)
                    else:
                        data.add_domain(points)
                    progressed = True
                elif outcome.status is CheckStatus.UNKNOWN:
                    return BaselineResult(
                        tool="fossil",
                        status=BaselineStatus.TIMEOUT,
                        iterations=iteration,
                        learn_seconds=t_learn,
                        verify_seconds=t_verify,
                        total_seconds=time.perf_counter() - t_start,
                        message=f"verifier exhausted on {cond}: {outcome.message}",
                    )
            if not progressed:
                data_extra = TrainingData.sample(
                    self.problem, cfg.n_samples // 4, rng=self.rng
                )
                data.add_domain(data_extra.s_domain)

        return BaselineResult(
            tool="fossil",
            status=BaselineStatus.FAILED,
            iterations=cfg.max_iterations,
            learn_seconds=t_learn,
            verify_seconds=t_verify,
            total_seconds=time.perf_counter() - t_start,
            message="max iterations without certificate",
        )

    # ------------------------------------------------------------------
    def _fit(self, learner: BarrierLearner, data: TrainingData):
        """Train on the true NN closed loop: field values computed with the
        controller's outputs at the sample points."""
        system = self.problem.system
        pts = data.s_domain
        if system.n_inputs:
            u = self.controller(pts)
        else:
            u = np.zeros((len(pts), 0))
        f_vals = system.rhs(pts, u)

        # reuse the learner's loss machinery with precomputed field values
        from repro.learner.loss import barrier_loss

        cfg = learner.config
        last = None
        for _ in range(cfg.epochs):
            learner.optimizer.zero_grad()
            loss, terms = barrier_loss(
                learner.b_net,
                learner.lambda_net,
                data,
                f_vals,
                eps=cfg.eps,
                etas=cfg.etas,
                negative_slope=cfg.negative_slope,
            )
            loss.backward()
            learner.optimizer.step()
            last = terms
        return last

    def _cex_ball(self, center: np.ndarray, cond: str) -> np.ndarray:
        cfg = self.config
        region = {
            "init": self.problem.theta,
            "unsafe": self.problem.xi,
            "lie": self.problem.psi,
        }[cond]
        pts = center + cfg.cex_radius * self.rng.normal(
            size=(cfg.n_cex_points, center.shape[0])
        )
        keep = pts[region.contains(pts, tol=1e-9)]
        return np.vstack([center[None, :], keep])
