"""SOSTOOLS-style baseline: one-shot SOS synthesis of the barrier.

The direct route: leave ``B`` as an unknown polynomial of bounded degree
and solve the SOS programming (12) in one shot.  The coupling
``lambda(x) B(x)`` makes that a *bilinear* (BMI) problem when both are
free; following the paper's protocol for its SOSTOOLS column ("we have
tried some polynomial multipliers with random coefficients and the degree
bound <= 2"), ``lambda`` is drawn randomly and fixed, turning each attempt
into a single (large) LMI over the coefficients of ``B`` and all
multipliers simultaneously.  Several draws are attempted; degree bounds
escalate up to ``max_degree`` (Table 1 marks x when ``deg(B) <= 6``
fails).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.common import BaselineResult, BaselineStatus
from repro.dynamics import CCDS
from repro.poly import Polynomial
from repro.poly.monomials import monomials_upto
from repro.sdp import InteriorPointOptions
from repro.sos import SOSExpr, SOSProgram


@dataclass
class SOSToolsConfig:
    """Protocol knobs for the direct-synthesis attempts."""

    degrees: Sequence[int] = (2, 4)
    lambda_degree: int = 1
    n_random_multipliers: int = 3
    #: deterministic constant multipliers tried before the random draws
    #: (a small negative constant is the classic hand-picked choice)
    constant_multipliers: Sequence[float] = (-0.1, -1.0)
    multiplier_scale: float = 1.0
    eps_unsafe: float = 1e-4
    eps_lie: float = 1e-4
    time_limit: float = 600.0
    sdp_options: InteriorPointOptions = field(
        default_factory=lambda: InteriorPointOptions(max_iterations=80)
    )
    seed: int = 0


class SOSToolsBaseline:
    """Direct SOS synthesis with random fixed multipliers."""

    def __init__(
        self,
        problem: CCDS,
        controller_polys: Sequence[Polynomial] = (),
        config: Optional[SOSToolsConfig] = None,
    ):
        self.problem = problem
        self.controller_polys = list(controller_polys)
        if len(self.controller_polys) != problem.system.n_inputs:
            raise ValueError("one controller polynomial per input required")
        self.config = config or SOSToolsConfig()
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _random_lambda(self) -> Polynomial:
        cfg = self.config
        basis = monomials_upto(self.problem.n_vars, cfg.lambda_degree)
        coeffs = {
            alpha: float(self.rng.normal(scale=cfg.multiplier_scale))
            for alpha in basis
        }
        return Polynomial(self.problem.n_vars, coeffs)

    def _attempt(self, degree: int, lam: Polynomial) -> Optional[Polynomial]:
        """One LMI attempt: returns a validated-by-sampling B or None."""
        cfg = self.config
        problem = self.problem
        n = problem.n_vars
        prog = SOSProgram(n)
        B = prog.free_poly(degree, label="B")

        field_polys = problem.system.closed_loop(self.controller_polys)

        def lie_of(expr: SOSExpr) -> SOSExpr:
            # L_f of a symbolic polynomial: differentiate monomial-wise
            out = SOSExpr.zero(n)
            for alpha, lc in expr.coeffs.items():
                mono = Polynomial.monomial(n, alpha)
                lf_mono = Polynomial.zero(n)
                for i, f_i in enumerate(field_polys):
                    lf_mono = lf_mono + mono.diff(i) * f_i
                for beta, c in lf_mono.coeffs.items():
                    cur = out.coeffs.setdefault(beta, type(lc)())
                    cur.add_inplace(lc, scale=c)
            return out

        # worst constraint degree: L_f B has degree deg(B) + d_f - 1,
        # lam * B has degree deg(B) + deg(lam)
        target = degree + max(
            0, problem.system.degree() - 1, self.config.lambda_degree
        )
        # (i) B - sum sigma theta in SOS
        expr_i = B
        for g in problem.theta.constraints:
            s = prog.sos_poly(self._mult_deg(target, g))
            expr_i = expr_i - s * g
        prog.require_sos(expr_i)
        # (ii) -B - sum delta xi - eps in SOS
        expr_u = -1.0 * B - cfg.eps_unsafe
        for g in problem.xi.constraints:
            s = prog.sos_poly(self._mult_deg(target, g))
            expr_u = expr_u - s * g
        prog.require_sos(expr_u)
        # (iii) L_f B - lam B - sum phi psi - eps in SOS (lam FIXED)
        expr_l = lie_of(B) - B * lam - cfg.eps_lie
        for g in problem.psi.constraints:
            s = prog.sos_poly(self._mult_deg(target, g))
            expr_l = expr_l - s * g
        prog.require_sos(expr_l)

        sol = prog.solve(cfg.sdp_options)
        if not sol.feasible:
            return None
        B_poly = sol.value(B)
        if B_poly.is_zero:
            return None
        # sanity sampling check (the big one-shot LMI has no per-condition
        # a-posteriori validation; mirror SOSTOOLS' numerical trust but
        # reject blatant numerical artifacts)
        rng = np.random.default_rng(1)
        if np.min(B_poly(problem.theta.sample(200, rng=rng))) < -1e-6:
            return None
        if np.max(B_poly(problem.xi.sample(200, rng=rng))) > -1e-9:
            return None
        return B_poly

    def _mult_deg(self, target: int, g: Polynomial) -> int:
        need = max(0, target - g.degree)
        return need + (need % 2)

    # ------------------------------------------------------------------
    def run(self) -> BaselineResult:
        cfg = self.config
        t0 = time.perf_counter()
        attempts = 0
        for degree in cfg.degrees:
            lambdas = [
                Polynomial.constant(self.problem.n_vars, v)
                for v in cfg.constant_multipliers
            ] + [self._random_lambda() for _ in range(cfg.n_random_multipliers)]
            for lam in lambdas:
                if time.perf_counter() - t0 > cfg.time_limit:
                    return BaselineResult(
                        tool="sostools",
                        status=BaselineStatus.TIMEOUT,
                        iterations=attempts,
                        total_seconds=time.perf_counter() - t0,
                        message="time budget exhausted",
                    )
                attempts += 1
                try:
                    B = self._attempt(degree, lam)
                except (MemoryError, ValueError) as exc:
                    return BaselineResult(
                        tool="sostools",
                        status=BaselineStatus.FAILED,
                        iterations=attempts,
                        total_seconds=time.perf_counter() - t0,
                        message=f"attempt crashed: {exc}",
                    )
                if B is not None:
                    elapsed = time.perf_counter() - t0
                    return BaselineResult(
                        tool="sostools",
                        status=BaselineStatus.SUCCESS,
                        barrier=B,
                        multiplier=lam,
                        degree=B.degree,
                        iterations=attempts,
                        verify_seconds=elapsed,  # synthesis == verification here
                        total_seconds=elapsed,
                    )
        return BaselineResult(
            tool="sostools",
            status=BaselineStatus.INFEASIBLE,
            iterations=attempts,
            total_seconds=time.perf_counter() - t0,
            message=f"no certificate with deg(B) in {tuple(cfg.degrees)}",
        )
