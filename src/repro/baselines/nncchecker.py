"""NNCChecker-style baseline: SOS candidate generation + dReal verification.

NNCChecker (Sha et al., DAC'21) synthesizes polynomial barrier candidates
for NN-controlled loops by numerical SOS optimization over the
polynomial-*approximated* controller, then formally verifies the barrier
conditions with dReal.  This reimplementation mirrors that split:

1. candidate generation = the one-shot SOS synthesis (shared with the
   SOSTOOLS-style code path, random fixed multipliers);
2. verification = the interval branch-and-prune delta-decision engine on
   the *true NN* closed loop;
3. failed verification tightens the strictness margins and retries
   (the iterative refinement reflected by Table 1's ``I_n`` column).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.baselines.common import BaselineResult, BaselineStatus
from repro.baselines.fossil import FossilBaseline, FossilConfig
from repro.baselines.sostools import SOSToolsBaseline, SOSToolsConfig
from repro.controllers import NNController
from repro.dynamics import CCDS
from repro.poly import Polynomial
from repro.smt import BranchAndPrune, CheckStatus


@dataclass
class NNCCheckerConfig:
    """Protocol knobs for the candidate/verify iterations."""

    max_refinements: int = 4
    degree: int = 2
    lambda_degree: int = 1
    #: the synthesis margin must absorb the gap between the approximated
    #: controller used for synthesis and the true NN checked by dReal
    eps_start: float = 0.05
    eps_growth: float = 4.0
    delta: float = 1e-2
    max_boxes_per_check: int = 60_000
    time_limit: float = 600.0
    seed: int = 0


class NNCCheckerBaseline:
    """SOS candidate synthesis + interval verification of the NN loop."""

    def __init__(
        self,
        problem: CCDS,
        controller: Optional[NNController] = None,
        controller_polys: Sequence[Polynomial] = (),
        config: Optional[NNCCheckerConfig] = None,
    ):
        self.problem = problem
        self.controller = controller
        self.controller_polys = list(controller_polys)
        if problem.system.n_inputs > 0:
            if controller is None:
                raise ValueError("a controlled system needs the NN controller")
            if len(self.controller_polys) != problem.system.n_inputs:
                raise ValueError(
                    "NNCChecker needs the polynomial approximation of the "
                    "controller for candidate synthesis"
                )
        self.config = config or NNCCheckerConfig()
        self.rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def run(self) -> BaselineResult:
        cfg = self.config
        t0 = time.perf_counter()
        t_learn = 0.0
        t_verify = 0.0
        eps = cfg.eps_start
        # interval checking of the true NN loop is borrowed from the FOSSIL
        # implementation (same enclosure construction)
        checker = FossilBaseline(
            self.problem,
            controller=self.controller,
            config=FossilConfig(
                delta=cfg.delta,
                max_boxes_per_check=cfg.max_boxes_per_check,
                seed=cfg.seed,
            ),
        )

        for refinement in range(1, cfg.max_refinements + 1):
            if time.perf_counter() - t0 > cfg.time_limit:
                return self._result(
                    BaselineStatus.TIMEOUT, None, refinement - 1, t_learn, t_verify, t0,
                    "time budget exhausted",
                )
            # 1. candidate via numerical SOS with the approximated controller
            t1 = time.perf_counter()
            synth = SOSToolsBaseline(
                self.problem,
                self.controller_polys,
                config=SOSToolsConfig(
                    degrees=(cfg.degree,),
                    lambda_degree=cfg.lambda_degree,
                    n_random_multipliers=2,
                    eps_unsafe=eps,
                    eps_lie=eps,
                    seed=cfg.seed + refinement,
                ),
            )
            cand_result = synth.run()
            t_learn += time.perf_counter() - t1
            if not cand_result.success:
                return self._result(
                    BaselineStatus.INFEASIBLE,
                    None,
                    refinement,
                    t_learn,
                    t_verify,
                    t0,
                    f"candidate synthesis failed: {cand_result.message}",
                )
            B = cand_result.barrier

            # 2. dReal-style verification against the TRUE NN loop
            t1 = time.perf_counter()
            remaining = max(1.0, cfg.time_limit - (time.perf_counter() - t0))
            engine = BranchAndPrune(
                delta=cfg.delta,
                max_boxes=cfg.max_boxes_per_check,
                time_limit=remaining / 3.0,
                rng=self.rng,
            )
            lam = cand_result.multiplier or Polynomial.zero(self.problem.n_vars)
            all_proved = True
            hit_unknown = False
            for cond in ("init", "unsafe", "lie"):
                outcome = checker._check_condition(cond, B, lam, engine)
                if outcome.status is CheckStatus.UNKNOWN:
                    hit_unknown = True
                    all_proved = False
                    break
                if outcome.status is not CheckStatus.PROVED:
                    all_proved = False
                    break
            t_verify += time.perf_counter() - t1

            if all_proved:
                return BaselineResult(
                    tool="nncchecker",
                    status=BaselineStatus.SUCCESS,
                    barrier=B,
                    degree=B.degree,
                    iterations=refinement,
                    learn_seconds=t_learn,
                    verify_seconds=t_verify,
                    total_seconds=time.perf_counter() - t0,
                )
            if hit_unknown:
                return self._result(
                    BaselineStatus.TIMEOUT, B, refinement, t_learn, t_verify, t0,
                    "interval verifier exhausted",
                )
            # 3. tighten margins and retry
            eps *= cfg.eps_growth

        return self._result(
            BaselineStatus.FAILED,
            None,
            cfg.max_refinements,
            t_learn,
            t_verify,
            t0,
            "refinements exhausted",
        )

    def _result(self, status, barrier, iters, t_learn, t_verify, t0, msg):
        return BaselineResult(
            tool="nncchecker",
            status=status,
            barrier=barrier,
            degree=barrier.degree if barrier is not None else None,
            iterations=iters,
            learn_seconds=t_learn,
            verify_seconds=t_verify,
            total_seconds=time.perf_counter() - t0,
            message=msg,
        )
