"""Baseline barrier-certificate tools compared against in Table 1.

* :mod:`repro.baselines.fossil` — FOSSIL-style CEGIS: an NN Learner with an
  SMT-style (interval branch-and-prune) Verifier that reasons about the
  *actual* NN controller in the loop;
* :mod:`repro.baselines.nncchecker` — NNCChecker-style: numerical SOS
  candidate generation followed by dReal-style interval verification of the
  conditions;
* :mod:`repro.baselines.sostools` — SOSTOOLS-style one-shot SOS synthesis
  with an unknown polynomial ``B`` and randomly-drawn fixed multipliers
  (the paper's protocol for its SOSTOOLS column).

All three share :class:`repro.baselines.common.BaselineResult` so the
Table 1 harness can aggregate them uniformly.
"""

from repro.baselines.common import BaselineResult, BaselineStatus
from repro.baselines.fossil import FossilBaseline, FossilConfig
from repro.baselines.nncchecker import NNCCheckerBaseline, NNCCheckerConfig
from repro.baselines.sostools import SOSToolsBaseline, SOSToolsConfig

__all__ = [
    "BaselineResult",
    "BaselineStatus",
    "FossilBaseline",
    "FossilConfig",
    "NNCCheckerBaseline",
    "NNCCheckerConfig",
    "SOSToolsBaseline",
    "SOSToolsConfig",
]
